file(REMOVE_RECURSE
  "CMakeFiles/jpeg_error_test.dir/jpeg_error_test.cpp.o"
  "CMakeFiles/jpeg_error_test.dir/jpeg_error_test.cpp.o.d"
  "jpeg_error_test"
  "jpeg_error_test.pdb"
  "jpeg_error_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpeg_error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
