# Empty dependencies file for jpeg_roundtrip_test.
# This may be replaced when dependencies are built.
