file(REMOVE_RECURSE
  "CMakeFiles/jpeg_roundtrip_test.dir/jpeg_roundtrip_test.cpp.o"
  "CMakeFiles/jpeg_roundtrip_test.dir/jpeg_roundtrip_test.cpp.o.d"
  "jpeg_roundtrip_test"
  "jpeg_roundtrip_test.pdb"
  "jpeg_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpeg_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
