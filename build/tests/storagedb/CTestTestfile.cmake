# CMake generated Testfile for 
# Source directory: /root/repo/tests/storagedb
# Build directory: /root/repo/build/tests/storagedb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/storagedb/page_store_test[1]_include.cmake")
include("/root/repo/build/tests/storagedb/kv_store_test[1]_include.cmake")
include("/root/repo/build/tests/storagedb/dataset_convert_test[1]_include.cmake")
