# Empty dependencies file for dataset_convert_test.
# This may be replaced when dependencies are built.
