file(REMOVE_RECURSE
  "CMakeFiles/dataset_convert_test.dir/dataset_convert_test.cpp.o"
  "CMakeFiles/dataset_convert_test.dir/dataset_convert_test.cpp.o.d"
  "dataset_convert_test"
  "dataset_convert_test.pdb"
  "dataset_convert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_convert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
