# Empty dependencies file for page_store_test.
# This may be replaced when dependencies are built.
