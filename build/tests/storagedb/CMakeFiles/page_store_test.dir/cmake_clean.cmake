file(REMOVE_RECURSE
  "CMakeFiles/page_store_test.dir/page_store_test.cpp.o"
  "CMakeFiles/page_store_test.dir/page_store_test.cpp.o.d"
  "page_store_test"
  "page_store_test.pdb"
  "page_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
