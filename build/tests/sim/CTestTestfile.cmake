# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/sim/resource_test[1]_include.cmake")
include("/root/repo/build/tests/sim/processor_sharing_test[1]_include.cmake")
include("/root/repo/build/tests/sim/cpu_accountant_test[1]_include.cmake")
include("/root/repo/build/tests/sim/queueing_validation_test[1]_include.cmake")
