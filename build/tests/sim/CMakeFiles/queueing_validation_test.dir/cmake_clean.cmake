file(REMOVE_RECURSE
  "CMakeFiles/queueing_validation_test.dir/queueing_validation_test.cpp.o"
  "CMakeFiles/queueing_validation_test.dir/queueing_validation_test.cpp.o.d"
  "queueing_validation_test"
  "queueing_validation_test.pdb"
  "queueing_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
