# Empty compiler generated dependencies file for queueing_validation_test.
# This may be replaced when dependencies are built.
