# Empty dependencies file for processor_sharing_test.
# This may be replaced when dependencies are built.
