file(REMOVE_RECURSE
  "CMakeFiles/processor_sharing_test.dir/processor_sharing_test.cpp.o"
  "CMakeFiles/processor_sharing_test.dir/processor_sharing_test.cpp.o.d"
  "processor_sharing_test"
  "processor_sharing_test.pdb"
  "processor_sharing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processor_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
