# Empty compiler generated dependencies file for cpu_accountant_test.
# This may be replaced when dependencies are built.
