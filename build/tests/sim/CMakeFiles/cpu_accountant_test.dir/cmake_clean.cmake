file(REMOVE_RECURSE
  "CMakeFiles/cpu_accountant_test.dir/cpu_accountant_test.cpp.o"
  "CMakeFiles/cpu_accountant_test.dir/cpu_accountant_test.cpp.o.d"
  "cpu_accountant_test"
  "cpu_accountant_test.pdb"
  "cpu_accountant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_accountant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
