# Empty dependencies file for decoder_config_test.
# This may be replaced when dependencies are built.
