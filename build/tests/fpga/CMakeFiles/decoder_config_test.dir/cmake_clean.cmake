file(REMOVE_RECURSE
  "CMakeFiles/decoder_config_test.dir/decoder_config_test.cpp.o"
  "CMakeFiles/decoder_config_test.dir/decoder_config_test.cpp.o.d"
  "decoder_config_test"
  "decoder_config_test.pdb"
  "decoder_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
