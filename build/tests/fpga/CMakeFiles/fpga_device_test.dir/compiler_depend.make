# Empty compiler generated dependencies file for fpga_device_test.
# This may be replaced when dependencies are built.
