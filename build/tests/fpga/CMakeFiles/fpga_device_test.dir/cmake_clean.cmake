file(REMOVE_RECURSE
  "CMakeFiles/fpga_device_test.dir/fpga_device_test.cpp.o"
  "CMakeFiles/fpga_device_test.dir/fpga_device_test.cpp.o.d"
  "fpga_device_test"
  "fpga_device_test.pdb"
  "fpga_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
