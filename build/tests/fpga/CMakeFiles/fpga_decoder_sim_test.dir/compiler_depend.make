# Empty compiler generated dependencies file for fpga_decoder_sim_test.
# This may be replaced when dependencies are built.
