file(REMOVE_RECURSE
  "CMakeFiles/fpga_decoder_sim_test.dir/fpga_decoder_sim_test.cpp.o"
  "CMakeFiles/fpga_decoder_sim_test.dir/fpga_decoder_sim_test.cpp.o.d"
  "fpga_decoder_sim_test"
  "fpga_decoder_sim_test.pdb"
  "fpga_decoder_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_decoder_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
