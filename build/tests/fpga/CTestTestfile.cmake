# CMake generated Testfile for 
# Source directory: /root/repo/tests/fpga
# Build directory: /root/repo/build/tests/fpga
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fpga/decoder_config_test[1]_include.cmake")
include("/root/repo/build/tests/fpga/fpga_decoder_sim_test[1]_include.cmake")
include("/root/repo/build/tests/fpga/fpga_device_test[1]_include.cmake")
