file(REMOVE_RECURSE
  "CMakeFiles/custom_decoder_plugin.dir/custom_decoder_plugin.cpp.o"
  "CMakeFiles/custom_decoder_plugin.dir/custom_decoder_plugin.cpp.o.d"
  "custom_decoder_plugin"
  "custom_decoder_plugin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_decoder_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
