# Empty dependencies file for custom_decoder_plugin.
# This may be replaced when dependencies are built.
