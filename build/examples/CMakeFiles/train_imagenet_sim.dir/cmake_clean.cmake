file(REMOVE_RECURSE
  "CMakeFiles/train_imagenet_sim.dir/train_imagenet_sim.cpp.o"
  "CMakeFiles/train_imagenet_sim.dir/train_imagenet_sim.cpp.o.d"
  "train_imagenet_sim"
  "train_imagenet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_imagenet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
