# Empty compiler generated dependencies file for train_imagenet_sim.
# This may be replaced when dependencies are built.
