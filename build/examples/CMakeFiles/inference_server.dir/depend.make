# Empty dependencies file for inference_server.
# This may be replaced when dependencies are built.
