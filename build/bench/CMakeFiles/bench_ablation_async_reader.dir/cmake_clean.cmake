file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_async_reader.dir/bench_ablation_async_reader.cpp.o"
  "CMakeFiles/bench_ablation_async_reader.dir/bench_ablation_async_reader.cpp.o.d"
  "bench_ablation_async_reader"
  "bench_ablation_async_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_async_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
