# Empty dependencies file for bench_ablation_async_reader.
# This may be replaced when dependencies are built.
