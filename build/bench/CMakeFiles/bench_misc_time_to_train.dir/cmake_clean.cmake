file(REMOVE_RECURSE
  "CMakeFiles/bench_misc_time_to_train.dir/bench_misc_time_to_train.cpp.o"
  "CMakeFiles/bench_misc_time_to_train.dir/bench_misc_time_to_train.cpp.o.d"
  "bench_misc_time_to_train"
  "bench_misc_time_to_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misc_time_to_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
