# Empty dependencies file for bench_fig6_train_cpu_cost.
# This may be replaced when dependencies are built.
