file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_resize.dir/bench_micro_resize.cpp.o"
  "CMakeFiles/bench_micro_resize.dir/bench_micro_resize.cpp.o.d"
  "bench_micro_resize"
  "bench_micro_resize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
