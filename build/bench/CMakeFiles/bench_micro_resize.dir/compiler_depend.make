# Empty compiler generated dependencies file for bench_micro_resize.
# This may be replaced when dependencies are built.
