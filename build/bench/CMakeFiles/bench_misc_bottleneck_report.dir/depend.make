# Empty dependencies file for bench_misc_bottleneck_report.
# This may be replaced when dependencies are built.
