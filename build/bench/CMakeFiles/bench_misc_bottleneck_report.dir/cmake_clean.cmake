file(REMOVE_RECURSE
  "CMakeFiles/bench_misc_bottleneck_report.dir/bench_misc_bottleneck_report.cpp.o"
  "CMakeFiles/bench_misc_bottleneck_report.dir/bench_misc_bottleneck_report.cpp.o.d"
  "bench_misc_bottleneck_report"
  "bench_misc_bottleneck_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misc_bottleneck_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
