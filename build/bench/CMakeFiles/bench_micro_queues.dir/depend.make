# Empty dependencies file for bench_micro_queues.
# This may be replaced when dependencies are built.
