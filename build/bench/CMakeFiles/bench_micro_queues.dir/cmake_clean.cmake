file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_queues.dir/bench_micro_queues.cpp.o"
  "CMakeFiles/bench_micro_queues.dir/bench_micro_queues.cpp.o.d"
  "bench_micro_queues"
  "bench_micro_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
