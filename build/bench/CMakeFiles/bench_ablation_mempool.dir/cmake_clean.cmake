file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mempool.dir/bench_ablation_mempool.cpp.o"
  "CMakeFiles/bench_ablation_mempool.dir/bench_ablation_mempool.cpp.o.d"
  "bench_ablation_mempool"
  "bench_ablation_mempool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mempool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
