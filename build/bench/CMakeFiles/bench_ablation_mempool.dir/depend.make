# Empty dependencies file for bench_ablation_mempool.
# This may be replaced when dependencies are built.
