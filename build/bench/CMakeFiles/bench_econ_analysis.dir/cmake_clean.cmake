file(REMOVE_RECURSE
  "CMakeFiles/bench_econ_analysis.dir/bench_econ_analysis.cpp.o"
  "CMakeFiles/bench_econ_analysis.dir/bench_econ_analysis.cpp.o.d"
  "bench_econ_analysis"
  "bench_econ_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_econ_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
