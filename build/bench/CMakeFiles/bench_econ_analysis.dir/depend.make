# Empty dependencies file for bench_econ_analysis.
# This may be replaced when dependencies are built.
