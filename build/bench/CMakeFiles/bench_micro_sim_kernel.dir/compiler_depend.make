# Empty compiler generated dependencies file for bench_micro_sim_kernel.
# This may be replaced when dependencies are built.
