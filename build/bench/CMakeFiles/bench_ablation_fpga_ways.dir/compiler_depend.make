# Empty compiler generated dependencies file for bench_ablation_fpga_ways.
# This may be replaced when dependencies are built.
