file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fpga_ways.dir/bench_ablation_fpga_ways.cpp.o"
  "CMakeFiles/bench_ablation_fpga_ways.dir/bench_ablation_fpga_ways.cpp.o.d"
  "bench_ablation_fpga_ways"
  "bench_ablation_fpga_ways.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fpga_ways.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
