file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_direct_write.dir/bench_ablation_direct_write.cpp.o"
  "CMakeFiles/bench_ablation_direct_write.dir/bench_ablation_direct_write.cpp.o.d"
  "bench_ablation_direct_write"
  "bench_ablation_direct_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_direct_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
