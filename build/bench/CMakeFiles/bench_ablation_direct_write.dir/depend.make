# Empty dependencies file for bench_ablation_direct_write.
# This may be replaced when dependencies are built.
