
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_infer_cpu_cost.cpp" "bench/CMakeFiles/bench_fig9_infer_cpu_cost.dir/bench_fig9_infer_cpu_cost.cpp.o" "gcc" "bench/CMakeFiles/bench_fig9_infer_cpu_cost.dir/bench_fig9_infer_cpu_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/dlb_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/dlb_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/dlb_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/storagedb/CMakeFiles/dlb_storagedb.dir/DependInfo.cmake"
  "/root/repo/build/src/hostbridge/CMakeFiles/dlb_hostbridge.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/dlb_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/dlb_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/dlb_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/dlb_image.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dlb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
