# Empty dependencies file for bench_fig8_infer_latency.
# This may be replaced when dependencies are built.
