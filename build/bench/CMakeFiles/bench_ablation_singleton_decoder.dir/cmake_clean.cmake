file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_singleton_decoder.dir/bench_ablation_singleton_decoder.cpp.o"
  "CMakeFiles/bench_ablation_singleton_decoder.dir/bench_ablation_singleton_decoder.cpp.o.d"
  "bench_ablation_singleton_decoder"
  "bench_ablation_singleton_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_singleton_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
