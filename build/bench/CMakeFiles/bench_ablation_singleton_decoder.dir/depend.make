# Empty dependencies file for bench_ablation_singleton_decoder.
# This may be replaced when dependencies are built.
