file(REMOVE_RECURSE
  "CMakeFiles/bench_misc_offline_conversion.dir/bench_misc_offline_conversion.cpp.o"
  "CMakeFiles/bench_misc_offline_conversion.dir/bench_misc_offline_conversion.cpp.o.d"
  "bench_misc_offline_conversion"
  "bench_misc_offline_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misc_offline_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
