# Empty compiler generated dependencies file for bench_misc_offline_conversion.
# This may be replaced when dependencies are built.
