// Table 1 of the paper enumerates the DLBooster API surface. This test
// pins each row to the corresponding symbol in this codebase so the mapping
// stays honest as the library evolves.
//
//   FPGAChannel.submit_cmd  -> fpga::FpgaDevice::SubmitCmd
//   FPGAChannel.drain_out   -> fpga::FpgaDevice::DrainCompletions
//   MemManager.get_item     -> HugePagePool::FreeQueue().Pop
//   MemManager.recycle_item -> HugePagePool::Recycle
//   MemManager.phy2virt     -> HugePagePool::PhysToVirt
//   MemManager.virt2phy     -> HugePagePool::VirtToPhys
//   DataCollector.load_from_disk -> DiskDataCollector
//   DataCollector.load_from_net  -> NetDataCollector
#include <gtest/gtest.h>

#include <type_traits>

#include "fpga/fpga_device.h"
#include "hostbridge/data_collector.h"
#include "hostbridge/hugepage_pool.h"

namespace dlb {
namespace {

TEST(ApiTableTest, FpgaChannelRows) {
  // submit_cmd takes a packed cmd; drain_out returns completions.
  static_assert(std::is_same_v<decltype(std::declval<fpga::FpgaDevice&>()
                                            .SubmitCmd(fpga::FpgaCmd{})),
                               Status>);
  static_assert(
      std::is_same_v<decltype(std::declval<fpga::FpgaDevice&>()
                                  .DrainCompletions()),
                     std::vector<fpga::FpgaCompletion>>);
  SUCCEED();
}

TEST(ApiTableTest, MemManagerRows) {
  HugePagePool pool(64, 1);
  // get_item / recycle_item
  auto item = pool.FreeQueue().TryPop();
  ASSERT_TRUE(item.has_value());
  pool.Recycle(*item);
  // phy2virt / virt2phy
  auto phys = pool.VirtToPhys((*item)->data);
  ASSERT_TRUE(phys.ok());
  auto virt = pool.PhysToVirt(phys.value());
  ASSERT_TRUE(virt.ok());
  EXPECT_EQ(virt.value(), (*item)->data);
}

TEST(ApiTableTest, DataCollectorRows) {
  static_assert(std::is_base_of_v<DataCollector, DiskDataCollector>);
  static_assert(std::is_base_of_v<DataCollector, NetDataCollector>);
  SUCCEED();
}

}  // namespace
}  // namespace dlb
