// Table 1 of the paper enumerates the DLBooster API surface. This test
// pins each row to the corresponding symbol in this codebase so the mapping
// stays honest as the library evolves.
//
//   FPGAChannel.submit_cmd  -> fpga::FpgaDevice::SubmitCmd
//   FPGAChannel.drain_out   -> fpga::FpgaDevice::DrainCompletions
//   MemManager.get_item     -> HugePagePool::FreeQueue().Pop
//   MemManager.recycle_item -> HugePagePool::Recycle
//   MemManager.phy2virt     -> HugePagePool::PhysToVirt
//   MemManager.virt2phy     -> HugePagePool::VirtToPhys
//   DataCollector.load_from_disk -> DiskDataCollector
//   DataCollector.load_from_net  -> NetDataCollector
#include <gtest/gtest.h>

#include <type_traits>

#include "backends/backend.h"
#include "backends/synthetic_backend.h"
#include "core/pipeline.h"
#include "fpga/fpga_device.h"
#include "hostbridge/data_collector.h"
#include "hostbridge/hugepage_pool.h"

namespace dlb {
namespace {

TEST(ApiTableTest, FpgaChannelRows) {
  // submit_cmd takes a packed cmd; drain_out returns completions.
  static_assert(std::is_same_v<decltype(std::declval<fpga::FpgaDevice&>()
                                            .SubmitCmd(fpga::FpgaCmd{})),
                               Status>);
  static_assert(
      std::is_same_v<decltype(std::declval<fpga::FpgaDevice&>()
                                  .DrainCompletions()),
                     std::vector<fpga::FpgaCompletion>>);
  SUCCEED();
}

TEST(ApiTableTest, MemManagerRows) {
  HugePagePool pool(64, 1);
  // get_item / recycle_item
  auto item = pool.FreeQueue().TryPop();
  ASSERT_TRUE(item.has_value());
  pool.Recycle(*item);
  // phy2virt / virt2phy
  auto phys = pool.VirtToPhys((*item)->data);
  ASSERT_TRUE(phys.ok());
  auto virt = pool.PhysToVirt(phys.value());
  ASSERT_TRUE(virt.ok());
  EXPECT_EQ(virt.value(), (*item)->data);
}

TEST(ApiTableTest, DataCollectorRows) {
  static_assert(std::is_base_of_v<DataCollector, DiskDataCollector>);
  static_assert(std::is_base_of_v<DataCollector, NetDataCollector>);
  SUCCEED();
}

// The redesigned observability surface: every backend describes itself and
// exposes per-stage metric snapshots; the Pipeline exposes the structured
// Stats() view, the metric registry and its JSON export.
TEST(ApiTableTest, BackendObservabilityRows) {
  static_assert(std::is_same_v<decltype(std::declval<const PreprocessBackend&>()
                                            .Describe()),
                               std::string>);
  static_assert(
      std::is_same_v<decltype(std::declval<const PreprocessBackend&>()
                                  .Metrics()),
                     std::vector<telemetry::StageSnapshot>>);
  static_assert(std::is_same_v<decltype(std::declval<PreprocessBackend&>()
                                            .AttachTelemetry(
                                                std::declval<telemetry::Telemetry*>())),
                               void>);

  // Metrics is empty until a telemetry sink is attached; snapshots then
  // cover all stages.
  SyntheticBackend backend({}, /*max_batches=*/1);
  EXPECT_EQ(backend.Describe(), "synthetic(batch=32)");
  EXPECT_TRUE(backend.Metrics().empty());
  telemetry::Telemetry sink;
  backend.AttachTelemetry(&sink);
  EXPECT_EQ(backend.Metrics().size(),
            static_cast<size_t>(telemetry::kNumStages));
}

TEST(ApiTableTest, PipelineStatsRows) {
  static_assert(std::is_same_v<decltype(std::declval<const core::Pipeline&>()
                                            .Stats()),
                               core::PipelineStats>);
  static_assert(std::is_same_v<decltype(std::declval<core::Pipeline&>()
                                            .Metrics()),
                               MetricRegistry&>);
  static_assert(std::is_same_v<decltype(std::declval<const core::Pipeline&>()
                                            .MetricsJson()),
                               std::string>);
  // Legacy fields stay addressable (deprecation path, DESIGN.md
  // "Observability"); the structured view rides alongside.
  core::PipelineStats stats;
  stats.batches = 1;
  stats.images_ok = 2;
  stats.images_failed = 3;
  static_assert(std::is_same_v<decltype(stats.batches), uint64_t>);
  static_assert(std::is_same_v<decltype(stats.elapsed_seconds), double>);
  static_assert(std::is_same_v<decltype(stats.images_per_second), double>);
  static_assert(std::is_same_v<decltype(stats.stages),
                               std::vector<telemetry::StageSnapshot>>);
  SUCCEED();
}

}  // namespace
}  // namespace dlb
