#include "core/plugin.h"

#include <gtest/gtest.h>

#include "codec/jpeg_encoder.h"
#include "codec/ppm.h"

namespace dlb::core {
namespace {

TEST(PluginTest, BuiltInMirrorsRegistered) {
  auto names = DecoderRegistry::Global().List();
  EXPECT_NE(std::find(names.begin(), names.end(), "jpeg"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "ppm"), names.end());
}

TEST(PluginTest, UnknownMirrorIsNotFound) {
  EXPECT_EQ(DecoderRegistry::Global().Create("hevc").status().code(),
            StatusCode::kNotFound);
}

TEST(PluginTest, JpegMirrorSniffsAndDecodes) {
  auto mirror = DecoderRegistry::Global().Create("jpeg");
  ASSERT_TRUE(mirror.ok());
  Image img(16, 12, 3);
  auto encoded = jpeg::Encode(img);
  ASSERT_TRUE(encoded.ok());
  EXPECT_TRUE(mirror.value()->Sniff(encoded.value()));
  auto decoded = mirror.value()->Decode(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().Width(), 16);
}

TEST(PluginTest, PpmMirrorSniffsAndDecodes) {
  auto mirror = DecoderRegistry::Global().Create("ppm");
  ASSERT_TRUE(mirror.ok());
  Image img(8, 8, 3);
  img.Set(2, 3, 1, 99);
  auto encoded = ppm::Encode(img);
  ASSERT_TRUE(encoded.ok());
  EXPECT_TRUE(mirror.value()->Sniff(encoded.value()));
  auto decoded = mirror.value()->Decode(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value() == img);  // PPM is lossless
}

TEST(PluginTest, MirrorsRejectForeignFormats) {
  auto jpeg_mirror = DecoderRegistry::Global().Create("jpeg");
  auto ppm_mirror = DecoderRegistry::Global().Create("ppm");
  ASSERT_TRUE(jpeg_mirror.ok());
  ASSERT_TRUE(ppm_mirror.ok());
  Image img(4, 4, 3);
  auto as_jpeg = jpeg::Encode(img);
  auto as_ppm = ppm::Encode(img);
  ASSERT_TRUE(as_jpeg.ok());
  ASSERT_TRUE(as_ppm.ok());
  EXPECT_FALSE(jpeg_mirror.value()->Sniff(as_ppm.value()));
  EXPECT_FALSE(ppm_mirror.value()->Sniff(as_jpeg.value()));
}

class CountingMirror : public DecoderMirror {
 public:
  std::string Name() const override { return "counting"; }
  std::string Description() const override { return "test mirror"; }
  bool Sniff(ByteSpan) const override { return true; }
  Result<Image> Decode(ByteSpan) const override { return Image(1, 1, 1); }
};

TEST(PluginTest, UserMirrorsCanRegisterOnce) {
  auto& registry = DecoderRegistry::Global();
  ASSERT_TRUE(registry
                  .Register("counting-test",
                            [] { return std::make_unique<CountingMirror>(); })
                  .ok());
  EXPECT_EQ(registry
                .Register("counting-test",
                          [] { return std::make_unique<CountingMirror>(); })
                .code(),
            StatusCode::kFailedPrecondition);
  auto mirror = registry.Create("counting-test");
  ASSERT_TRUE(mirror.ok());
  EXPECT_EQ(mirror.value()->Name(), "counting");
}

TEST(PluginTest, InvalidRegistrationRejected) {
  auto& registry = DecoderRegistry::Global();
  EXPECT_FALSE(registry.Register("", [] {
    return std::make_unique<CountingMirror>();
  }).ok());
  EXPECT_FALSE(registry.Register("null-factory", nullptr).ok());
}

}  // namespace
}  // namespace dlb::core
