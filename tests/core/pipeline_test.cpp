// Public API integration tests: one builder, four backends, mirrors, cache.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "codec/png.h"
#include "codec/ppm.h"
#include "image/resize.h"
#include "dataplane/synthetic_dataset.h"
#include "storagedb/dataset_convert.h"

namespace dlb::core {
namespace {

Dataset SmallDataset(size_t n) {
  DatasetSpec spec = ImageNetLikeSpec(n);
  spec.width = 64;
  spec.height = 48;
  auto ds = GenerateDataset(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

PipelineConfig SmallConfig(const std::string& backend, size_t batch = 4) {
  PipelineConfig config;
  config.backend = backend;
  config.options.batch_size = batch;
  config.options.resize_w = 32;
  config.options.resize_h = 32;
  config.options.shuffle = false;
  config.options.num_threads = 2;
  return config;
}

TEST(PipelineTest, DlboosterEndToEnd) {
  Dataset ds = SmallDataset(8);
  PipelineConfig config = SmallConfig("dlbooster");
  config.max_images = 8;
  auto pipeline = PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.manifest, ds.store.get())
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  size_t images = 0;
  while (true) {
    auto batch = pipeline.value()->NextBatch();
    if (!batch.ok()) break;
    images += batch.value()->OkCount();
  }
  EXPECT_EQ(images, 8u);
  EXPECT_EQ(pipeline.value()->Stats().images_ok, 8u);
  EXPECT_EQ(pipeline.value()->Stats().batches, 2u);
}

TEST(PipelineTest, CpuBackendViaBuilder) {
  Dataset ds = SmallDataset(8);
  PipelineConfig config = SmallConfig("cpu");
  config.max_images = 8;
  auto pipeline = PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.manifest, ds.store.get())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  auto batch = pipeline.value()->NextBatch();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value()->OkCount(), 4u);
}

TEST(PipelineTest, LmdbBackendViaBuilder) {
  Dataset ds = SmallDataset(8);
  db::KvStore store(32);
  db::ConvertOptions convert;
  convert.resize_width = 32;
  convert.resize_height = 32;
  ASSERT_TRUE(db::ConvertDataset(ds, convert, &store).ok());

  PipelineConfig config = SmallConfig("lmdb");
  config.max_images = 8;
  auto pipeline = PipelineBuilder()
                      .WithConfig(config)
                      .WithDatabase(&ds.manifest, &store)
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  size_t images = 0;
  while (true) {
    auto batch = pipeline.value()->NextBatch();
    if (!batch.ok()) break;
    images += batch.value()->OkCount();
  }
  EXPECT_EQ(images, 8u);
}

TEST(PipelineTest, SyntheticBackendNeedsNoSource) {
  PipelineConfig config = SmallConfig("synthetic");
  config.max_images = 8;
  auto pipeline = PipelineBuilder().WithConfig(config).Build();
  ASSERT_TRUE(pipeline.ok());
  EXPECT_TRUE(pipeline.value()->NextBatch().ok());
}

TEST(PipelineTest, UnknownBackendRejected) {
  PipelineConfig config = SmallConfig("quantum");
  EXPECT_FALSE(PipelineBuilder().WithConfig(config).Build().ok());
}

TEST(PipelineTest, MissingSourceRejected) {
  EXPECT_FALSE(
      PipelineBuilder().WithConfig(SmallConfig("dlbooster")).Build().ok());
  EXPECT_FALSE(PipelineBuilder().WithConfig(SmallConfig("cpu")).Build().ok());
  EXPECT_FALSE(PipelineBuilder().WithConfig(SmallConfig("lmdb")).Build().ok());
}

TEST(PipelineTest, TensorBatchIsNormalizedNchw) {
  Dataset ds = SmallDataset(4);
  PipelineConfig config = SmallConfig("dlbooster");
  config.max_images = 4;
  auto pipeline = PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.manifest, ds.store.get())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  auto tensor = pipeline.value()->NextTensorBatch();
  ASSERT_TRUE(tensor.ok()) << tensor.status().ToString();
  const Tensor& t = tensor.value().first;
  EXPECT_EQ(t.n, 4);
  EXPECT_EQ(t.c, 3);
  EXPECT_EQ(t.h, 32);
  EXPECT_EQ(t.w, 32);
  EXPECT_EQ(tensor.value().second.size(), 4u);
  // Normalised values are small.
  for (float v : t.data) {
    EXPECT_GT(v, -5.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(PipelineTest, NetworkSourceFeedsInferencePath) {
  Dataset ds = SmallDataset(4);
  BoundedQueue<NetworkImage> rx(16);
  for (size_t i = 0; i < 4; ++i) {
    auto bytes = ds.store->Read(ds.manifest.At(i));
    ASSERT_TRUE(bytes.ok());
    NetworkImage img;
    img.payload.assign(bytes.value().begin(), bytes.value().end());
    img.request_id = 1000 + i;
    ASSERT_TRUE(rx.Push(std::move(img)).ok());
  }
  rx.Close();

  PipelineConfig config = SmallConfig("dlbooster");
  auto pipeline =
      PipelineBuilder().WithConfig(config).WithNetworkSource(&rx).Build();
  ASSERT_TRUE(pipeline.ok());
  auto batch = pipeline.value()->NextBatch();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value()->OkCount(), 4u);
  // Request ids travel as cookies so responses can be routed.
  std::set<uint64_t> cookies;
  for (size_t i = 0; i < batch.value()->Size(); ++i) {
    cookies.insert(batch.value()->At(i).cookie);
  }
  EXPECT_EQ(cookies.size(), 4u);
  EXPECT_TRUE(cookies.count(1000));
}

TEST(PipelineTest, PpmMirrorThroughPublicApi) {
  // A PPM dataset decoded by the "downloaded" ppm mirror on the device.
  Manifest manifest;
  auto store = std::make_unique<InMemoryBlobStore>();
  for (int i = 0; i < 4; ++i) {
    Image img(40, 30, 3);
    for (size_t p = 0; p < img.SizeBytes(); ++p) {
      img.Data()[p] = static_cast<uint8_t>(p + i);
    }
    auto encoded = ppm::Encode(img);
    ASSERT_TRUE(encoded.ok());
    manifest.Add(store->Append(encoded.value(),
                               "img_" + std::to_string(i) + ".ppm", i));
  }
  PipelineConfig config = SmallConfig("dlbooster");
  config.decoder_mirror = "ppm";
  config.max_images = 4;
  auto pipeline = PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&manifest, store.get())
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto batch = pipeline.value()->NextBatch();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value()->OkCount(), 4u);
}

TEST(PipelineTest, PngMirrorThroughPublicApi) {
  // A PNG dataset decoded by the "downloaded" png mirror: lossless, so the
  // decoded-and-resized output must be bit-identical to encoding-side
  // pixels run through the same resize.
  Manifest manifest;
  auto store = std::make_unique<InMemoryBlobStore>();
  std::vector<Image> originals;
  for (int i = 0; i < 4; ++i) {
    Image img(50, 40, 3);
    for (size_t p = 0; p < img.SizeBytes(); ++p) {
      img.Data()[p] = static_cast<uint8_t>((p * 13 + i * 31) % 256);
    }
    auto encoded = png::Encode(img);
    ASSERT_TRUE(encoded.ok());
    manifest.Add(store->Append(encoded.value(),
                               "img_" + std::to_string(i) + ".png", i));
    originals.push_back(std::move(img));
  }
  PipelineConfig config = SmallConfig("dlbooster");
  config.decoder_mirror = "png";
  config.max_images = 4;
  auto pipeline = PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&manifest, store.get())
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto batch = pipeline.value()->NextBatch();
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value()->OkCount(), 4u);
  for (size_t i = 0; i < batch.value()->Size(); ++i) {
    const ImageRef ref = batch.value()->At(i);
    auto expected =
        Resize(originals[ref.label], 32, 32, ResizeFilter::kArea);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(0, std::memcmp(ref.data, expected.value().Data(),
                             expected.value().SizeBytes()));
  }
}

TEST(PipelineTest, BuilderRejectsConflictingSources) {
  Dataset ds = SmallDataset(4);
  db::KvStore store(32);
  auto both = PipelineBuilder()
                  .WithConfig(SmallConfig("dlbooster"))
                  .WithDataset(&ds.manifest, ds.store.get())
                  .WithDatabase(&ds.manifest, &store)
                  .Build();
  ASSERT_FALSE(both.ok());
  EXPECT_EQ(both.status().code(), StatusCode::kInvalidArgument);

  BoundedQueue<NetworkImage> rx(4);
  auto net_and_disk = PipelineBuilder()
                          .WithConfig(SmallConfig("dlbooster"))
                          .WithDataset(&ds.manifest, ds.store.get())
                          .WithNetworkSource(&rx)
                          .Build();
  ASSERT_FALSE(net_and_disk.ok());
  EXPECT_EQ(net_and_disk.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, BuilderRejectsOutOfRangeOptions) {
  Dataset ds = SmallDataset(4);
  auto build_with = [&](auto mutate) {
    PipelineConfig config = SmallConfig("cpu");
    mutate(config.options);
    return PipelineBuilder()
        .WithConfig(config)
        .WithDataset(&ds.manifest, ds.store.get())
        .Build();
  };
  for (const auto& result :
       {build_with([](BackendOptions& o) { o.batch_size = 0; }),
        build_with([](BackendOptions& o) { o.num_engines = 0; }),
        build_with([](BackendOptions& o) { o.num_threads = 0; }),
        build_with([](BackendOptions& o) { o.resize_w = 0; }),
        build_with([](BackendOptions& o) { o.resize_h = -1; }),
        build_with([](BackendOptions& o) { o.queue_depth = 0; })}) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(PipelineTest, NextBatchRejectsOutOfRangeEngine) {
  PipelineConfig config = SmallConfig("synthetic");
  config.max_images = 8;
  auto pipeline = PipelineBuilder().WithConfig(config).Build();
  ASSERT_TRUE(pipeline.ok());
  auto bad = pipeline.value()->NextBatch(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  bad = pipeline.value()->NextBatch(1);  // only engine 0 exists
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(pipeline.value()->NextBatch(0).ok());
}

// The stage counters must reconcile with the legacy image counters: every
// image the pipeline handed out was fetched exactly once.
TEST(PipelineTest, StageCountersReconcileWithImageCounts) {
  Dataset ds = SmallDataset(8);
  PipelineConfig config = SmallConfig("cpu");
  config.max_images = 8;
  auto pipeline = PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.manifest, ds.store.get())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  while (pipeline.value()->NextBatch().ok()) {
  }
  const PipelineStats stats = pipeline.value()->Stats();
  ASSERT_EQ(stats.stages.size(), 6u);
  using telemetry::Stage;
  auto stage = [&](Stage s) {
    return stats.stages[static_cast<size_t>(s)];
  };
  EXPECT_EQ(stage(Stage::kFetch).items,
            stats.images_ok + stats.images_failed);
  EXPECT_EQ(stage(Stage::kDecode).ops,
            stats.images_ok + stats.images_failed);
  EXPECT_GT(stage(Stage::kResize).ops, 0u);
  EXPECT_GT(stage(Stage::kDispatch).ops, 0u);
  EXPECT_EQ(stage(Stage::kConsume).ops, stats.batches);
  EXPECT_GT(stats.elapsed_seconds, 0.0);
  EXPECT_GT(stats.images_per_second, 0.0);
}

TEST(PipelineTest, DlboosterStagesPopulated) {
  Dataset ds = SmallDataset(8);
  PipelineConfig config = SmallConfig("dlbooster");
  config.max_images = 8;
  auto pipeline = PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.manifest, ds.store.get())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  while (pipeline.value()->NextBatch().ok()) {
  }
  const PipelineStats stats = pipeline.value()->Stats();
  using telemetry::Stage;
  for (Stage s : {Stage::kFetch, Stage::kDecode, Stage::kResize,
                  Stage::kCollect, Stage::kDispatch, Stage::kConsume}) {
    EXPECT_GT(stats.stages[static_cast<size_t>(s)].ops, 0u)
        << telemetry::StageName(s);
  }
  EXPECT_EQ(stats.stages[static_cast<size_t>(Stage::kFetch)].items,
            stats.images_ok + stats.images_failed);
  // FPGA unit busy counters surfaced through the registry and JSON export.
  EXPECT_GT(pipeline.value()->Metrics().GetCounter("fpga.resizer.busy_ns")->Value(),
            0u);
  const std::string json = pipeline.value()->MetricsJson();
  EXPECT_NE(json.find("\"stage.decode.latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"fpga.huffman.busy_ns\""), std::string::npos);
}

TEST(PipelineTest, EpochCacheServesRepeatedEpochs) {
  Dataset ds = SmallDataset(4);
  PipelineConfig config = SmallConfig("cpu");
  config.max_images = 4;
  config.cache_epochs = true;
  auto pipeline = PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.manifest, ds.store.get())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  // Far more batches than the 4-image source could provide without a cache.
  for (int i = 0; i < 10; ++i) {
    auto batch = pipeline.value()->NextBatch();
    ASSERT_TRUE(batch.ok()) << i << ": " << batch.status().ToString();
  }
}

}  // namespace
}  // namespace dlb::core
