#include "backends/cpu_backend.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dataplane/synthetic_dataset.h"

namespace dlb {
namespace {

Dataset SmallDataset(size_t n) {
  DatasetSpec spec = ImageNetLikeSpec(n);
  spec.width = 64;
  spec.height = 48;
  spec.dim_jitter = 0.1;
  auto ds = GenerateDataset(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

BackendOptions SmallOptions(size_t batch = 8) {
  BackendOptions options;
  options.batch_size = batch;
  options.resize_w = 32;
  options.resize_h = 32;
  options.num_threads = 2;
  options.shuffle = false;
  return options;
}

TEST(CpuBackendTest, DeliversAllImagesThenCloses) {
  Dataset ds = SmallDataset(16);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  CpuBackend backend(&collector, SmallOptions(8), /*max_images=*/16);
  ASSERT_TRUE(backend.Start().ok());
  size_t images = 0;
  while (true) {
    auto batch = backend.NextBatch(0);
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), StatusCode::kClosed);
      break;
    }
    images += batch.value()->OkCount();
  }
  EXPECT_EQ(images, 16u);
  EXPECT_EQ(backend.ImagesDecoded(), 16u);
  EXPECT_EQ(backend.DecodeFailures(), 0u);
}

TEST(CpuBackendTest, BatchGeometryMatchesOptions) {
  Dataset ds = SmallDataset(8);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  CpuBackend backend(&collector, SmallOptions(4), 8);
  ASSERT_TRUE(backend.Start().ok());
  auto batch = backend.NextBatch(0);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value()->Size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    ImageRef ref = batch.value()->At(i);
    EXPECT_TRUE(ref.ok);
    EXPECT_EQ(ref.width, 32);
    EXPECT_EQ(ref.height, 32);
    EXPECT_EQ(ref.channels, 3);
  }
  backend.Stop();
}

TEST(CpuBackendTest, DoubleStartRejected) {
  Dataset ds = SmallDataset(2);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  CpuBackend backend(&collector, SmallOptions(), 2);
  ASSERT_TRUE(backend.Start().ok());
  EXPECT_EQ(backend.Start().code(), StatusCode::kFailedPrecondition);
  backend.Stop();
}

TEST(CpuBackendTest, CorruptSampleMarkedFailedNotFatal) {
  // Build a store with one valid and one corrupt blob.
  Manifest manifest;
  InMemoryBlobStore store;
  Dataset good = SmallDataset(1);
  auto bytes = good.store->Read(good.manifest.At(0));
  ASSERT_TRUE(bytes.ok());
  manifest.Add(store.Append(bytes.value(), "good.jpg", 1));
  const Bytes garbage = {0xFF, 0xD8, 0x12, 0x34};
  manifest.Add(store.Append(garbage, "bad.jpg", 2));

  DiskDataCollector collector(&manifest, &store, false, 1);
  CpuBackend backend(&collector, SmallOptions(2), 2);
  ASSERT_TRUE(backend.Start().ok());
  auto batch = backend.NextBatch(0);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value()->Size(), 2u);
  EXPECT_EQ(batch.value()->OkCount(), 1u);
  EXPECT_EQ(backend.DecodeFailures(), 1u);
  backend.Stop();
}

TEST(CpuBackendTest, LabelsTravelWithImages) {
  Dataset ds = SmallDataset(6);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  CpuBackend backend(&collector, SmallOptions(6), 6);
  ASSERT_TRUE(backend.Start().ok());
  auto batch = backend.NextBatch(0);
  ASSERT_TRUE(batch.ok());
  std::multiset<int32_t> expected, got;
  for (const auto& rec : ds.manifest.Records()) expected.insert(rec.label);
  for (size_t i = 0; i < batch.value()->Size(); ++i) {
    got.insert(batch.value()->At(i).label);
  }
  EXPECT_EQ(expected, got);
  backend.Stop();
}

TEST(CpuBackendTest, StopWhileStreamingIsClean) {
  Dataset ds = SmallDataset(16);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  // Unbounded stream: Stop() must end it.
  CpuBackend backend(&collector, SmallOptions(4), 0);
  ASSERT_TRUE(backend.Start().ok());
  auto batch = backend.NextBatch(0);
  EXPECT_TRUE(batch.ok());
  backend.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace dlb
