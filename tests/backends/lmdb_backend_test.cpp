#include "backends/lmdb_backend.h"

#include <gtest/gtest.h>

#include <set>

#include "dataplane/synthetic_dataset.h"
#include "storagedb/dataset_convert.h"

namespace dlb {
namespace {

struct Fixture {
  explicit Fixture(size_t n) : db(64) {
    DatasetSpec spec = ImageNetLikeSpec(n);
    spec.width = 64;
    spec.height = 48;
    auto generated = GenerateDataset(spec);
    EXPECT_TRUE(generated.ok());
    dataset = std::move(generated).value();
    db::ConvertOptions opts;
    opts.resize_width = 32;
    opts.resize_height = 32;
    EXPECT_TRUE(db::ConvertDataset(dataset, opts, &db).ok());
  }
  Dataset dataset;
  db::KvStore db;
};

BackendOptions SmallOptions(size_t batch = 4) {
  BackendOptions options;
  options.batch_size = batch;
  options.resize_w = 32;
  options.resize_h = 32;
  options.num_threads = 2;
  options.shuffle = false;
  return options;
}

TEST(LmdbBackendTest, ServesConvertedRecords) {
  Fixture fx(8);
  LmdbBackend backend(&fx.dataset.manifest, &fx.db, SmallOptions(4), 8);
  ASSERT_TRUE(backend.Start().ok());
  size_t images = 0;
  while (true) {
    auto batch = backend.NextBatch(0);
    if (!batch.ok()) break;
    images += batch.value()->OkCount();
    for (size_t i = 0; i < batch.value()->Size(); ++i) {
      ImageRef ref = batch.value()->At(i);
      EXPECT_TRUE(ref.ok);
      EXPECT_EQ(ref.width, 32);
    }
  }
  EXPECT_EQ(images, 8u);
  EXPECT_EQ(backend.RecordsServed(), 8u);
  EXPECT_EQ(backend.Failures(), 0u);
}

TEST(LmdbBackendTest, ResizesWhenDatumDiffersFromTarget) {
  Fixture fx(4);  // datums stored at 32x32
  BackendOptions options = SmallOptions(4);
  options.resize_w = 16;
  options.resize_h = 16;
  LmdbBackend backend(&fx.dataset.manifest, &fx.db, options, 4);
  ASSERT_TRUE(backend.Start().ok());
  auto batch = backend.NextBatch(0);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < batch.value()->Size(); ++i) {
    EXPECT_EQ(batch.value()->At(i).width, 16);
    EXPECT_EQ(batch.value()->At(i).height, 16);
  }
  backend.Stop();
}

TEST(LmdbBackendTest, MissingRecordsCountAsFailures) {
  Fixture fx(4);
  // Extend the manifest with a record that was never converted.
  FileRecord ghost;
  ghost.id = 999;
  ghost.name = "ghost.jpg";
  fx.dataset.manifest.Add(ghost);
  LmdbBackend backend(&fx.dataset.manifest, &fx.db, SmallOptions(5), 5);
  ASSERT_TRUE(backend.Start().ok());
  auto batch = backend.NextBatch(0);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value()->OkCount(), 4u);
  EXPECT_EQ(backend.Failures(), 1u);
  backend.Stop();
}

TEST(LmdbBackendTest, MaxImagesBoundsStream) {
  Fixture fx(8);
  LmdbBackend backend(&fx.dataset.manifest, &fx.db, SmallOptions(4), 6);
  ASSERT_TRUE(backend.Start().ok());
  size_t images = 0;
  while (true) {
    auto batch = backend.NextBatch(0);
    if (!batch.ok()) break;
    images += batch.value()->Size();
  }
  EXPECT_EQ(images, 6u);
}

TEST(LmdbBackendTest, LabelsRoundTripThroughTheDb) {
  Fixture fx(6);
  LmdbBackend backend(&fx.dataset.manifest, &fx.db, SmallOptions(6), 6);
  ASSERT_TRUE(backend.Start().ok());
  auto batch = backend.NextBatch(0);
  ASSERT_TRUE(batch.ok());
  std::multiset<int32_t> expected, got;
  for (const auto& rec : fx.dataset.manifest.Records()) {
    expected.insert(rec.label);
  }
  for (size_t i = 0; i < batch.value()->Size(); ++i) {
    got.insert(batch.value()->At(i).label);
  }
  EXPECT_EQ(expected, got);
  backend.Stop();
}

}  // namespace
}  // namespace dlb
