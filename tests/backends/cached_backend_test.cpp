#include "backends/cached_backend.h"

#include <gtest/gtest.h>

#include "backends/cpu_backend.h"
#include "dataplane/synthetic_dataset.h"

namespace dlb {
namespace {

Dataset SmallDataset(size_t n) {
  auto ds = GenerateDataset(MnistLikeSpec(n));
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

BackendOptions SmallOptions(size_t batch) {
  BackendOptions options;
  options.batch_size = batch;
  options.resize_w = 28;
  options.resize_h = 28;
  options.channels = 1;
  options.shuffle = false;
  options.num_threads = 1;
  return options;
}

TEST(CachedBackendTest, ReplaysForeverAfterFirstEpoch) {
  Dataset ds = SmallDataset(8);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  auto inner = std::make_unique<CpuBackend>(&collector, SmallOptions(4),
                                            /*max_images=*/8);
  CachedBackend cached(std::move(inner), /*budget=*/1 << 20);
  ASSERT_TRUE(cached.Start().ok());

  // First epoch: 2 batches from the inner backend.
  size_t first_epoch_images = 0;
  for (int i = 0; i < 2; ++i) {
    auto batch = cached.NextBatch(0);
    ASSERT_TRUE(batch.ok());
    first_epoch_images += batch.value()->OkCount();
  }
  EXPECT_EQ(first_epoch_images, 8u);
  EXPECT_FALSE(cached.CacheComplete());

  // The inner stream is exhausted; the cache takes over seamlessly.
  for (int i = 0; i < 10; ++i) {
    auto batch = cached.NextBatch(0);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch.value()->OkCount(), 4u);
  }
  EXPECT_TRUE(cached.CacheComplete());
  EXPECT_GE(cached.CacheHits(), 10u);
  EXPECT_GT(cached.CachedBytes(), 0u);
  cached.Stop();
}

TEST(CachedBackendTest, ReplayedPixelsMatchOriginals) {
  Dataset ds = SmallDataset(4);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  auto inner =
      std::make_unique<CpuBackend>(&collector, SmallOptions(4), 4);
  CachedBackend cached(std::move(inner), 1 << 20);
  ASSERT_TRUE(cached.Start().ok());

  auto first = cached.NextBatch(0);
  ASSERT_TRUE(first.ok());
  std::vector<uint64_t> hashes;
  for (size_t i = 0; i < first.value()->Size(); ++i) {
    ImageRef ref = first.value()->At(i);
    hashes.push_back(Fnv1a64(ByteSpan(ref.data, ref.SizeBytes())));
  }
  auto replay = cached.NextBatch(0);  // epoch 2: from cache
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value()->Size(), first.value()->Size());
  for (size_t i = 0; i < replay.value()->Size(); ++i) {
    ImageRef ref = replay.value()->At(i);
    EXPECT_EQ(hashes[i], Fnv1a64(ByteSpan(ref.data, ref.SizeBytes())));
  }
  cached.Stop();
}

TEST(CachedBackendTest, AbandonsCacheWhenBudgetExceeded) {
  // ILSVRC case: the dataset does not fit in the cache budget.
  Dataset ds = SmallDataset(8);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  auto inner =
      std::make_unique<CpuBackend>(&collector, SmallOptions(4), 8);
  CachedBackend cached(std::move(inner), /*budget=*/100);  // tiny
  ASSERT_TRUE(cached.Start().ok());
  size_t images = 0;
  while (true) {
    auto batch = cached.NextBatch(0);
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), StatusCode::kClosed);
      break;
    }
    images += batch.value()->OkCount();
  }
  EXPECT_EQ(images, 8u);
  EXPECT_FALSE(cached.CacheComplete());
  EXPECT_EQ(cached.CachedBytes(), 0u);
  cached.Stop();
}

TEST(CachedBackendTest, NameReflectsWrapping) {
  Dataset ds = SmallDataset(1);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  auto inner = std::make_unique<CpuBackend>(&collector, SmallOptions(1), 1);
  CachedBackend cached(std::move(inner), 1 << 20);
  EXPECT_EQ(cached.Name(), "cpu+cache");
}

}  // namespace
}  // namespace dlb
