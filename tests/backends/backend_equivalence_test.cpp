// The load-bearing invariant of the backend abstraction: the CPU backend
// and the DLBooster (FPGA-offload) backend produce BIT-IDENTICAL pixels for
// the same samples, because they share the same stage implementations.
// An engine can therefore swap backends without any numerical drift.
#include <gtest/gtest.h>

#include <map>

#include "backends/cpu_backend.h"
#include "backends/dlbooster_backend.h"
#include "dataplane/synthetic_dataset.h"

namespace dlb {
namespace {

Dataset SmallDataset(size_t n) {
  DatasetSpec spec = ImageNetLikeSpec(n);
  spec.width = 80;
  spec.height = 60;
  spec.dim_jitter = 0.15;
  auto ds = GenerateDataset(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

/// Decode every image through a backend; key results by label multiplicity-
/// safe content hash.
std::multimap<int32_t, uint64_t> Collect(PreprocessBackend& backend,
                                         size_t expect_images) {
  EXPECT_TRUE(backend.Start().ok());
  std::multimap<int32_t, uint64_t> out;
  while (out.size() < expect_images) {
    auto batch = backend.NextBatch(0);
    if (!batch.ok()) break;
    for (size_t i = 0; i < batch.value()->Size(); ++i) {
      ImageRef ref = batch.value()->At(i);
      if (!ref.ok) continue;
      out.emplace(ref.label,
                  Fnv1a64(ByteSpan(ref.data, ref.SizeBytes())));
    }
  }
  backend.Stop();
  return out;
}

TEST(BackendEquivalenceTest, CpuAndDlboosterProduceIdenticalPixels) {
  constexpr size_t kImages = 12;
  Dataset ds = SmallDataset(kImages);

  BackendOptions options;
  options.batch_size = 4;
  options.resize_w = 32;
  options.resize_h = 32;
  options.shuffle = false;
  options.num_threads = 2;

  DiskDataCollector cpu_collector(&ds.manifest, ds.store.get(), false, 1);
  CpuBackend cpu(&cpu_collector, options, kImages);
  auto cpu_hashes = Collect(cpu, kImages);

  DiskDataCollector dlb_collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&dlb_collector, kImages);
  DlboosterOptions dlb_options;
  dlb_options.backend = options;
  DlboosterBackend dlbooster(&bounded, dlb_options);
  auto dlb_hashes = Collect(dlbooster, kImages);

  ASSERT_EQ(cpu_hashes.size(), kImages);
  EXPECT_EQ(cpu_hashes, dlb_hashes);
}

TEST(BackendEquivalenceTest, HoldsWithAspectPreservingCrop) {
  constexpr size_t kImages = 8;
  Dataset ds = SmallDataset(kImages);

  BackendOptions options;
  options.batch_size = 4;
  options.resize_w = 32;
  options.resize_h = 32;
  options.shuffle = false;
  options.aspect_preserving_crop = true;

  DiskDataCollector cpu_collector(&ds.manifest, ds.store.get(), false, 1);
  CpuBackend cpu(&cpu_collector, options, kImages);
  auto cpu_hashes = Collect(cpu, kImages);

  DiskDataCollector dlb_collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&dlb_collector, kImages);
  DlboosterOptions dlb_options;
  dlb_options.backend = options;
  DlboosterBackend dlbooster(&bounded, dlb_options);
  auto dlb_hashes = Collect(dlbooster, kImages);

  ASSERT_EQ(cpu_hashes.size(), kImages);
  EXPECT_EQ(cpu_hashes, dlb_hashes);
}

TEST(BackendEquivalenceTest, HoldsWithDecodeToScale) {
  // Decode-to-scale changes the work split (scaled iDCT + residual resize)
  // but not the invariant: both backends run the identical stage functions,
  // so their outputs must still match byte-for-byte. Configured through the
  // new OutputSpec field rather than the legacy shim.
  constexpr size_t kImages = 12;
  Dataset ds = SmallDataset(kImages);

  BackendOptions options;
  options.batch_size = 4;
  options.output.width = 24;
  options.output.height = 24;
  options.decode_to_scale = true;
  options.shuffle = false;
  options.num_threads = 2;

  DiskDataCollector cpu_collector(&ds.manifest, ds.store.get(), false, 1);
  CpuBackend cpu(&cpu_collector, options, kImages);
  auto cpu_hashes = Collect(cpu, kImages);

  DiskDataCollector dlb_collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&dlb_collector, kImages);
  DlboosterOptions dlb_options;
  dlb_options.backend = options;
  DlboosterBackend dlbooster(&bounded, dlb_options);
  auto dlb_hashes = Collect(dlbooster, kImages);

  ASSERT_EQ(cpu_hashes.size(), kImages);
  EXPECT_EQ(cpu_hashes, dlb_hashes);
}

TEST(BackendEquivalenceTest, HoldsWithDecodeToScaleAndCoverCrop) {
  constexpr size_t kImages = 8;
  Dataset ds = SmallDataset(kImages);

  BackendOptions options;
  options.batch_size = 4;
  options.output.width = 32;
  options.output.height = 32;
  options.output.fit = FitMode::kCoverCrop;
  options.decode_to_scale = true;
  options.shuffle = false;

  DiskDataCollector cpu_collector(&ds.manifest, ds.store.get(), false, 1);
  CpuBackend cpu(&cpu_collector, options, kImages);
  auto cpu_hashes = Collect(cpu, kImages);

  DiskDataCollector dlb_collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&dlb_collector, kImages);
  DlboosterOptions dlb_options;
  dlb_options.backend = options;
  DlboosterBackend dlbooster(&bounded, dlb_options);
  auto dlb_hashes = Collect(dlbooster, kImages);

  ASSERT_EQ(cpu_hashes.size(), kImages);
  EXPECT_EQ(cpu_hashes, dlb_hashes);
}

TEST(BackendEquivalenceTest, HoldsForGrayscaleMnistShapes) {
  constexpr size_t kImages = 8;
  auto generated = GenerateDataset(MnistLikeSpec(kImages));
  ASSERT_TRUE(generated.ok());
  Dataset ds = std::move(generated).value();

  BackendOptions options;
  options.batch_size = 4;
  options.resize_w = 28;
  options.resize_h = 28;
  options.channels = 3;  // slot stride; grayscale payloads fit
  options.shuffle = false;

  DiskDataCollector cpu_collector(&ds.manifest, ds.store.get(), false, 1);
  CpuBackend cpu(&cpu_collector, options, kImages);
  auto cpu_hashes = Collect(cpu, kImages);

  DiskDataCollector dlb_collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&dlb_collector, kImages);
  DlboosterOptions dlb_options;
  dlb_options.backend = options;
  DlboosterBackend dlbooster(&bounded, dlb_options);
  auto dlb_hashes = Collect(dlbooster, kImages);

  ASSERT_EQ(cpu_hashes.size(), kImages);
  EXPECT_EQ(cpu_hashes, dlb_hashes);
}

}  // namespace
}  // namespace dlb
