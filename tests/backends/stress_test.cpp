// Stress and failure-injection integration tests for the full runtime
// stack: corrupt inputs flow through as failed items (never wedging the
// pipeline), and concurrent engines + multiple devices under pool pressure
// deliver every image exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "backends/dlbooster_backend.h"
#include "dataplane/synthetic_dataset.h"

namespace dlb {
namespace {

Dataset MixedDataset(size_t good, size_t corrupt) {
  Dataset ds;
  if (good > 0) {
    DatasetSpec spec = ImageNetLikeSpec(good);
    spec.width = 64;
    spec.height = 48;
    auto generated = GenerateDataset(spec);
    EXPECT_TRUE(generated.ok());
    ds = std::move(generated).value();
  } else {
    ds.store = std::make_unique<InMemoryBlobStore>();
  }
  Rng rng(99);
  for (size_t i = 0; i < corrupt; ++i) {
    // Valid SOI, garbage after: parses far enough to exercise error paths.
    Bytes junk = {0xFF, 0xD8};
    for (int b = 0; b < 200; ++b) {
      junk.push_back(static_cast<uint8_t>(rng.UniformU64(256)));
    }
    ds.manifest.Add(
        ds.store->Append(junk, "junk_" + std::to_string(i) + ".jpg", -1));
  }
  return ds;
}

TEST(StressTest, CorruptImagesFlowThroughAsFailedItems) {
  Dataset ds = MixedDataset(12, 4);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&collector, 16);
  DlboosterOptions options;
  options.backend.batch_size = 4;
  options.backend.resize_w = 32;
  options.backend.resize_h = 32;
  DlboosterBackend backend(&bounded, options);
  ASSERT_TRUE(backend.Start().ok());
  size_t ok = 0, failed = 0;
  while (true) {
    auto batch = backend.NextBatch(0);
    if (!batch.ok()) break;
    ok += batch.value()->OkCount();
    failed += batch.value()->Size() - batch.value()->OkCount();
  }
  EXPECT_EQ(ok, 12u);
  EXPECT_EQ(failed, 4u);
  EXPECT_EQ(backend.DecodeFailures(), 4u);
  backend.Stop();
}

TEST(StressTest, AllCorruptDatasetStillTerminates) {
  Dataset ds = MixedDataset(0, 8);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&collector, 8);
  DlboosterOptions options;
  options.backend.batch_size = 4;
  options.backend.resize_w = 16;
  options.backend.resize_h = 16;
  DlboosterBackend backend(&bounded, options);
  ASSERT_TRUE(backend.Start().ok());
  size_t failed = 0;
  while (true) {
    auto batch = backend.NextBatch(0);
    if (!batch.ok()) break;
    failed += batch.value()->Size() - batch.value()->OkCount();
  }
  EXPECT_EQ(failed, 8u);
  backend.Stop();
}

TEST(StressTest, ConcurrentEnginesReceiveEverything) {
  constexpr size_t kImages = 120;
  Dataset ds = MixedDataset(24, 0);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&collector, kImages);
  DlboosterOptions options;
  options.backend.batch_size = 6;
  options.backend.resize_w = 24;
  options.backend.resize_h = 24;
  options.backend.num_engines = 2;
  options.num_devices = 2;
  options.pool_buffers = 3;  // pressure: fewer buffers than in-flight work
  options.backend.queue_depth = 2;
  DlboosterBackend backend(&bounded, options);
  ASSERT_TRUE(backend.Start().ok());

  std::atomic<size_t> images{0};
  std::vector<std::thread> engines;
  for (int e = 0; e < 2; ++e) {
    engines.emplace_back([&backend, &images, e] {
      while (true) {
        auto batch = backend.NextBatch(e);
        if (!batch.ok()) break;
        images += batch.value()->OkCount();
        // Hold the batch briefly: simulates compute while others run.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  for (auto& t : engines) t.join();
  EXPECT_EQ(images.load(), kImages);
  EXPECT_EQ(backend.ImagesDecoded(), kImages);
  backend.Stop();
}

TEST(StressTest, PackedFileDatasetFeedsDlbooster) {
  // The single-file dataset format drives the full stack: pack real JPEGs,
  // reopen, decode through the FPGA pipeline.
  Dataset source = MixedDataset(8, 0);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dlb_e2e.pack").string();
  ASSERT_TRUE(
      PackedFileBlobStore::Pack(source.manifest, *source.store, path).ok());
  auto opened = PackedFileBlobStore::Open(path);
  ASSERT_TRUE(opened.ok());

  DiskDataCollector collector(&opened.value().manifest,
                              opened.value().store.get(), false, 1);
  BoundedCollector bounded(&collector, 8);
  DlboosterOptions options;
  options.backend.batch_size = 4;
  options.backend.resize_w = 24;
  options.backend.resize_h = 24;
  DlboosterBackend backend(&bounded, options);
  ASSERT_TRUE(backend.Start().ok());
  size_t ok = 0;
  while (true) {
    auto batch = backend.NextBatch(0);
    if (!batch.ok()) break;
    ok += batch.value()->OkCount();
  }
  EXPECT_EQ(ok, 8u);
  backend.Stop();
  std::filesystem::remove(path);
}

TEST(StressTest, RapidStartStopCycles) {
  for (int cycle = 0; cycle < 5; ++cycle) {
    Dataset ds = MixedDataset(4, 0);
    DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
    BoundedCollector bounded(&collector, 4);
    DlboosterOptions options;
    options.backend.batch_size = 4;
    options.backend.resize_w = 16;
    options.backend.resize_h = 16;
    DlboosterBackend backend(&bounded, options);
    ASSERT_TRUE(backend.Start().ok());
    auto batch = backend.NextBatch(0);
    EXPECT_TRUE(batch.ok());
    backend.Stop();  // immediate teardown with work possibly in flight
  }
  SUCCEED();
}

}  // namespace
}  // namespace dlb
