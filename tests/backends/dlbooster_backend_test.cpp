// Integration: the full DLBooster stack (Fig. 3) behind the backend API.
#include "backends/dlbooster_backend.h"

#include <gtest/gtest.h>

#include <set>

#include "dataplane/synthetic_dataset.h"

namespace dlb {
namespace {

Dataset SmallDataset(size_t n) {
  DatasetSpec spec = ImageNetLikeSpec(n);
  spec.width = 64;
  spec.height = 48;
  spec.dim_jitter = 0.1;
  auto ds = GenerateDataset(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

DlboosterOptions SmallOptions(size_t batch = 4, int engines = 1) {
  DlboosterOptions options;
  options.backend.batch_size = batch;
  options.backend.resize_w = 32;
  options.backend.resize_h = 32;
  options.backend.num_engines = engines;
  options.pool_buffers = 4;
  return options;
}

TEST(DlboosterBackendTest, EndToEndDeliversAllImages) {
  Dataset ds = SmallDataset(16);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&collector, 16);
  DlboosterBackend backend(&bounded, SmallOptions(4));
  ASSERT_TRUE(backend.Start().ok());
  size_t images = 0;
  int batches = 0;
  while (true) {
    auto batch = backend.NextBatch(0);
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), StatusCode::kClosed);
      break;
    }
    ++batches;
    images += batch.value()->OkCount();
  }
  EXPECT_EQ(images, 16u);
  EXPECT_EQ(batches, 4);
  backend.Stop();
}

TEST(DlboosterBackendTest, BatchGeometryAndLabels) {
  Dataset ds = SmallDataset(4);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&collector, 4);
  DlboosterBackend backend(&bounded, SmallOptions(4));
  ASSERT_TRUE(backend.Start().ok());
  auto batch = backend.NextBatch(0);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value()->Size(), 4u);
  std::multiset<int32_t> expected, got;
  for (const auto& rec : ds.manifest.Records()) expected.insert(rec.label);
  for (size_t i = 0; i < 4; ++i) {
    ImageRef ref = batch.value()->At(i);
    EXPECT_TRUE(ref.ok);
    EXPECT_EQ(ref.width, 32);
    EXPECT_EQ(ref.height, 32);
    got.insert(ref.label);
  }
  EXPECT_EQ(expected, got);
  backend.Stop();
}

TEST(DlboosterBackendTest, TwoEnginesBothReceiveBatches) {
  Dataset ds = SmallDataset(16);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&collector, 16);
  DlboosterBackend backend(&bounded, SmallOptions(4, /*engines=*/2));
  ASSERT_TRUE(backend.Start().ok());
  // Round-robin: engines 0 and 1 each get 2 of the 4 batches.
  size_t images0 = 0, images1 = 0;
  for (int i = 0; i < 2; ++i) {
    auto b0 = backend.NextBatch(0);
    ASSERT_TRUE(b0.ok());
    images0 += b0.value()->OkCount();
    auto b1 = backend.NextBatch(1);
    ASSERT_TRUE(b1.ok());
    images1 += b1.value()->OkCount();
  }
  EXPECT_EQ(images0, 8u);
  EXPECT_EQ(images1, 8u);
  backend.Stop();
}

TEST(DlboosterBackendTest, RecycleKeepsSmallPoolFlowing) {
  Dataset ds = SmallDataset(8);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&collector, 40);
  DlboosterOptions options = SmallOptions(4);
  options.pool_buffers = 2;
  options.backend.queue_depth = 2;
  DlboosterBackend backend(&bounded, options);
  ASSERT_TRUE(backend.Start().ok());
  size_t images = 0;
  while (true) {
    auto batch = backend.NextBatch(0);
    if (!batch.ok()) break;
    images += batch.value()->OkCount();
  }
  EXPECT_EQ(images, 40u);
  backend.Stop();
}

TEST(DlboosterBackendTest, TwoDevicesDecodeEverything) {
  // "Plugging more FPGA devices" (§5.3): two emulated decoders, two
  // FPGAReaders, a sharded data plane (per-device arena + queues) and the
  // work-stealing router in between.
  Dataset ds = SmallDataset(16);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&collector, 48);
  DlboosterOptions options = SmallOptions(4);
  options.num_devices = 2;
  // Round-robin home-shard assignment makes the split deterministic enough
  // to assert on: each device is assigned 24 of the 48 commands.
  options.assign_policy = "rr";
  DlboosterBackend backend(&bounded, options);
  EXPECT_EQ(backend.NumDevices(), 2);
  ASSERT_TRUE(backend.Start().ok());
  size_t images = 0;
  while (true) {
    auto batch = backend.NextBatch(0);
    if (!batch.ok()) break;
    images += batch.value()->OkCount();
  }
  EXPECT_EQ(images, 48u);
  EXPECT_EQ(backend.ImagesDecoded(), 48u);
  // Coverage invariant: per-device accounting covers the whole stream.
  EXPECT_EQ(backend.Device(0).Completed() + backend.Device(1).Completed(), 48u);
  // Min-share invariant: stealing only drains a healthy victim down to the
  // watermark (re-checked per stolen item), so with 24 commands assigned
  // each, every device completes >= min(assigned, watermark) itself. This
  // holds on any scheduling interleaving — no flaky exact-split assert.
  const auto watermark = static_cast<uint64_t>(options.steal_watermark);
  EXPECT_GE(backend.Device(0).Completed(), watermark);
  EXPECT_GE(backend.Device(1).Completed(), watermark);
  backend.Stop();
}

TEST(DlboosterBackendTest, StopWithoutStartIsSafe) {
  Dataset ds = SmallDataset(2);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  DlboosterBackend backend(&collector, SmallOptions());
  backend.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace dlb
