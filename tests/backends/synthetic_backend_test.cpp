#include "backends/synthetic_backend.h"

#include <gtest/gtest.h>

namespace dlb {
namespace {

BackendOptions SmallOptions() {
  BackendOptions options;
  options.batch_size = 8;
  options.resize_w = 16;
  options.resize_h = 16;
  return options;
}

TEST(SyntheticBackendTest, ServesInstantly) {
  SyntheticBackend backend(SmallOptions());
  ASSERT_TRUE(backend.Start().ok());
  auto batch = backend.NextBatch(0);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value()->Size(), 8u);
  EXPECT_EQ(batch.value()->OkCount(), 8u);
  ImageRef ref = batch.value()->At(0);
  EXPECT_EQ(ref.width, 16);
  EXPECT_EQ(ref.data[0], 127);
}

TEST(SyntheticBackendTest, BudgetBoundsBatches) {
  SyntheticBackend backend(SmallOptions(), /*max_batches=*/3);
  ASSERT_TRUE(backend.Start().ok());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(backend.NextBatch(0).ok());
  EXPECT_EQ(backend.NextBatch(0).status().code(), StatusCode::kClosed);
}

TEST(SyntheticBackendTest, UnboundedWhenZeroBudget) {
  SyntheticBackend backend(SmallOptions(), 0);
  ASSERT_TRUE(backend.Start().ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(backend.NextBatch(0).ok());
}

TEST(SyntheticBackendTest, OutOfRangeItemIsEmptyRef) {
  SyntheticBackend backend(SmallOptions());
  ASSERT_TRUE(backend.Start().ok());
  auto batch = backend.NextBatch(0);
  ASSERT_TRUE(batch.ok());
  ImageRef ref = batch.value()->At(999);
  EXPECT_FALSE(ref.ok);
  EXPECT_EQ(ref.data, nullptr);
}

}  // namespace
}  // namespace dlb
