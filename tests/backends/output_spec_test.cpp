// OutputSpec and the legacy-field shim: the resolved output contract must
// honour the new field, let moved legacy fields win (so seed call sites keep
// their meaning), and drive slot sizing from one place.
#include <gtest/gtest.h>

#include "backends/backend.h"

namespace dlb {
namespace {

TEST(OutputSpecTest, DefaultsMatchLegacyDefaults) {
  BackendOptions options;
  const OutputSpec out = options.ResolvedOutput();
  EXPECT_EQ(out.width, 256);
  EXPECT_EQ(out.height, 256);
  EXPECT_EQ(out.channels, 3);
  EXPECT_EQ(out.fit, FitMode::kStretch);
  EXPECT_EQ(options.SlotStride(), 256u * 256 * 3);
}

TEST(OutputSpecTest, NewFieldDrivesResolution) {
  BackendOptions options;
  options.output.width = 224;
  options.output.height = 224;
  options.output.channels = 1;
  options.output.fit = FitMode::kCoverCrop;
  const OutputSpec out = options.ResolvedOutput();
  EXPECT_EQ(out.width, 224);
  EXPECT_EQ(out.height, 224);
  EXPECT_EQ(out.channels, 1);
  EXPECT_EQ(out.fit, FitMode::kCoverCrop);
  EXPECT_EQ(options.SlotStride(), 224u * 224);
}

TEST(OutputSpecTest, MovedLegacyFieldWins) {
  // A legacy call site that sets resize_w/resize_h must keep working even
  // though it never touches `output`.
  BackendOptions options;
  options.resize_w = 64;
  options.resize_h = 48;
  options.channels = 1;
  options.aspect_preserving_crop = true;
  const OutputSpec out = options.ResolvedOutput();
  EXPECT_EQ(out.width, 64);
  EXPECT_EQ(out.height, 48);
  EXPECT_EQ(out.channels, 1);
  EXPECT_EQ(out.fit, FitMode::kCoverCrop);
  EXPECT_EQ(options.SlotStride(), 64u * 48);
}

TEST(OutputSpecTest, LegacyOverridesOnlyTheFieldsItMoved) {
  // Mixed usage: `output` carries the geometry, one legacy field nudges the
  // fit. Only the moved legacy field overrides.
  BackendOptions options;
  options.output.width = 96;
  options.output.height = 96;
  options.aspect_preserving_crop = true;
  const OutputSpec out = options.ResolvedOutput();
  EXPECT_EQ(out.width, 96);
  EXPECT_EQ(out.height, 96);
  EXPECT_EQ(out.channels, 3);
  EXPECT_EQ(out.fit, FitMode::kCoverCrop);
}

TEST(OutputSpecTest, SlotBytesIsWidthHeightChannels) {
  OutputSpec spec;
  spec.width = 17;
  spec.height = 9;
  spec.channels = 3;
  EXPECT_EQ(spec.SlotBytes(), 17u * 9 * 3);
}

TEST(OutputSpecTest, EqualityComparesAllFields) {
  OutputSpec a;
  OutputSpec b;
  EXPECT_TRUE(a == b);
  b.fit = FitMode::kCoverCrop;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace dlb
