#include "fpga/fpga_decoder_sim.h"

#include <gtest/gtest.h>

namespace dlb::fpga {
namespace {

DecodeJob IlsvrcJob(DataSource source = DataSource::kDisk) {
  DecodeJob job;
  job.encoded_bytes = 60 * 1024;
  job.pixels = 500 * 375;
  job.out_bytes = 256 * 256 * 3;
  job.source = source;
  return job;
}

/// Pump `n` jobs through with a closed-loop window and report throughput.
double MeasureThroughput(FpgaDecoderSim& sim, sim::Scheduler& sched,
                         const DecodeJob& job, int n) {
  int completed = 0;
  int issued = 0;
  std::function<void()> on_done = [&] { ++completed; };
  // Keep the FIFO topped up.
  std::function<void()> pump = [&] {
    while (issued < n && sim.SubmitDecode(job, [&] {
             ++completed;
             pump();
           })) {
      ++issued;
    }
  };
  pump();
  sched.Run();
  EXPECT_EQ(completed, n);
  return n / sim::ToSeconds(sched.Now());
}

TEST(FpgaDecoderSimTest, DiskPathExceedsTrainingDemand) {
  sim::Scheduler sched;
  FpgaDecoderSim sim(&sched, DecoderConfig{});
  const double rate = MeasureThroughput(sim, sched, IlsvrcJob(), 2000);
  // Fig. 5(b): DLBooster keeps TWO training GPUs at the 4652 img/s
  // boundary, so the disk-fed decoder must comfortably exceed that; the
  // stage model puts the 4-way Huffman bound near 20k img/s.
  EXPECT_GT(rate, 4652.0 * 1.5);
  EXPECT_LT(rate, 40000.0);
}

TEST(FpgaDecoderSimTest, DramPathSaturatesNearPaperBound) {
  sim::Scheduler sched;
  FpgaDecoderSim sim(&sched, DecoderConfig{});
  const double rate =
      MeasureThroughput(sim, sched, IlsvrcJob(DataSource::kDram), 2000);
  // Fig. 7(a): the inference-path decoder bound is ~2.4k img/s.
  EXPECT_GT(rate, 2000.0);
  EXPECT_LT(rate, 3000.0);
}

TEST(FpgaDecoderSimTest, MoreHuffmanWaysMoreThroughput) {
  auto run = [](int ways) {
    sim::Scheduler sched;
    DecoderConfig config;
    config.huffman_ways = ways;
    FpgaDecoderSim sim(&sched, config);
    DecodeJob job = IlsvrcJob();
    int completed = 0;
    for (int i = 0; i < 500; ++i) {
      // Submit as FIFO space allows; advance virtual time when full.
      while (!sim.SubmitDecode(job, [&] { ++completed; })) {
        sched.Step();
      }
    }
    sched.Run();
    EXPECT_EQ(completed, 500);
    return 500 / sim::ToSeconds(sched.Now());
  };
  const double one_way = run(1);
  const double four_way = run(4);
  EXPECT_GT(four_way, one_way * 2.0);
}

TEST(FpgaDecoderSimTest, PipelinedBeatsFused) {
  auto run = [](bool pipelined) {
    sim::Scheduler sched;
    DecoderConfig config;
    config.pipelined = pipelined;
    FpgaDecoderSim sim(&sched, config);
    DecodeJob job = IlsvrcJob();
    int completed = 0;
    for (int i = 0; i < 300; ++i) {
      while (!sim.SubmitDecode(job, [&] { ++completed; })) {
        sched.Step();
      }
    }
    sched.Run();
    EXPECT_EQ(completed, 300);
    return 300 / sim::ToSeconds(sched.Now());
  };
  EXPECT_GT(run(true), run(false) * 1.5);
}

TEST(FpgaDecoderSimTest, FifoBoundsInFlight) {
  sim::Scheduler sched;
  DecoderConfig config;
  config.cmd_fifo_depth = 4;
  FpgaDecoderSim sim(&sched, config);
  DecodeJob job = IlsvrcJob();
  int admitted = 0;
  while (sim.SubmitDecode(job, nullptr)) ++admitted;
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(sim.FifoSpace(), 0);
  sched.Run();
  EXPECT_EQ(sim.InFlight(), 0);
  EXPECT_EQ(sim.Completed(), 4u);
}

TEST(FpgaDecoderSimTest, SingleImageLatencyIsSubMillisecond) {
  sim::Scheduler sched;
  FpgaDecoderSim sim(&sched, DecoderConfig{});
  sim::SimTime done = 0;
  ASSERT_TRUE(sim.SubmitDecode(IlsvrcJob(), [&] { done = sched.Now(); }));
  sched.Run();
  // A lone 500x375 decode through the pipeline: hundreds of microseconds.
  EXPECT_GT(sim::ToMillis(done), 0.05);
  EXPECT_LT(sim::ToMillis(done), 1.5);
  EXPECT_EQ(sim.LatencyHistogram().Count(), 1u);
}

TEST(FpgaDecoderSimTest, TinyImagesBoundByCmdOverhead) {
  sim::Scheduler sched;
  FpgaDecoderSim sim(&sched, DecoderConfig{});
  DecodeJob job;
  job.encoded_bytes = 400;  // MNIST-sized JPEG
  job.pixels = 28 * 28;
  job.out_bytes = 28 * 28;
  int completed = 0;
  for (int i = 0; i < 2000; ++i) {
    while (!sim.SubmitDecode(job, [&] { ++completed; })) sched.Step();
  }
  sched.Run();
  const double rate = 2000 / sim::ToSeconds(sched.Now());
  // Parser cmd overhead (4us) caps tiny-image decode around 250k img/s.
  EXPECT_GT(rate, 100000.0);
  EXPECT_LT(rate, 400000.0);
}

TEST(FpgaDecoderSimTest, UtilizationIdentifiesBottleneck) {
  sim::Scheduler sched;
  FpgaDecoderSim sim(&sched, DecoderConfig{});
  DecodeJob job = IlsvrcJob();
  for (int i = 0; i < 500; ++i) {
    while (!sim.SubmitDecode(job, nullptr)) sched.Step();
  }
  sched.Run();
  // With the shipped 4/1/2 ways on disk input, the Huffman unit is the
  // near-saturated stage (that is why the paper gives it 4 ways).
  EXPECT_GT(sim.HuffmanUtilization(), sim.ResizerUtilization());
  EXPECT_GT(sim.HuffmanUtilization(), 0.5);
}

}  // namespace
}  // namespace dlb::fpga
