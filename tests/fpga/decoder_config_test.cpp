#include "fpga/decoder_config.h"

#include <gtest/gtest.h>

namespace dlb::fpga {
namespace {

TEST(DecoderConfigTest, PaperConfigFitsTheBudget) {
  DecoderConfig config;  // 4-way Huffman, 2-way resizer (§4.1)
  EXPECT_TRUE(ValidateConfig(config).ok());
  EXPECT_LE(AlmUsage(config), cal::kFpgaAlmBudget);
}

TEST(DecoderConfigTest, AlmUsageScalesWithWays) {
  DecoderConfig narrow, wide;
  narrow.huffman_ways = 1;
  wide.huffman_ways = 8;
  AlmCosts costs;
  EXPECT_EQ(AlmUsage(wide) - AlmUsage(narrow), 7 * costs.huffman_per_way);
}

TEST(DecoderConfigTest, OversizedConfigRejected) {
  DecoderConfig config;
  config.huffman_ways = 16;
  config.idct_ways = 8;
  config.resizer_ways = 8;
  Status s = ValidateConfig(config);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(DecoderConfigTest, ZeroWaysRejected) {
  DecoderConfig config;
  config.huffman_ways = 0;
  EXPECT_EQ(ValidateConfig(config).code(), StatusCode::kInvalidArgument);
  config.huffman_ways = 1;
  config.idct_ways = 0;
  EXPECT_FALSE(ValidateConfig(config).ok());
  config.idct_ways = 1;
  config.resizer_ways = -1;
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(DecoderConfigTest, EmptyFifoRejected) {
  DecoderConfig config;
  config.cmd_fifo_depth = 0;
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(DecoderConfigTest, NonPositiveClockRejected) {
  DecoderConfig config;
  config.clock_hz = 0;
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(DecoderConfigTest, ToStringMentionsWays) {
  DecoderConfig config;
  const std::string s = config.ToString();
  EXPECT_NE(s.find("huffman=4-way"), std::string::npos);
  EXPECT_NE(s.find("resizer=2-way"), std::string::npos);
  EXPECT_NE(s.find("pipelined"), std::string::npos);
}

TEST(DecoderConfigTest, ShippedDesignDrawsAboutTwentyFiveWatts) {
  // §5.4: "FPGAs have the lowest power consumption (~25 W)".
  EXPECT_NEAR(EstimatedWatts(DecoderConfig{}), cal::kFpgaWatts, 2.0);
}

TEST(DecoderConfigTest, PowerGrowsWithWaysAndClock) {
  DecoderConfig small, wide, fast;
  wide.huffman_ways = 8;
  fast.clock_hz = small.clock_hz * 2;
  EXPECT_GT(EstimatedWatts(wide), EstimatedWatts(small));
  EXPECT_GT(EstimatedWatts(fast), EstimatedWatts(small));
  // Even the widest valid design stays far below a 130 W CPU socket.
  EXPECT_LT(EstimatedWatts(wide), cal::kCpuWatts / 2);
}

TEST(DecoderConfigTest, MaxWaysUnderBudget) {
  // Property: the widest Huffman unit that fits alongside the shipped
  // iDCT/resizer is bounded by the ALM model, not arbitrary.
  DecoderConfig config;
  int max_ways = 0;
  for (int ways = 1; ways <= 32; ++ways) {
    config.huffman_ways = ways;
    if (ValidateConfig(config).ok()) max_ways = ways;
  }
  EXPECT_GE(max_ways, 4);   // paper's config must fit
  EXPECT_LT(max_ways, 32);  // budget must actually bind
}

}  // namespace
}  // namespace dlb::fpga
