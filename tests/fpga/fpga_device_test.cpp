// The emulated FPGA device must produce *bit-identical* output to the plain
// software decode path — backend equivalence is the load-bearing invariant
// behind swapping backends without retraining.
#include "fpga/fpga_device.h"

#include <gtest/gtest.h>

#include <map>

#include "codec/jpeg_decoder.h"
#include "codec/jpeg_encoder.h"
#include "codec/ppm.h"
#include "dataplane/synthetic_dataset.h"
#include "image/resize.h"

namespace dlb::fpga {
namespace {

Bytes EncodeScene(int w, int h, uint64_t seed, Image* out_img = nullptr) {
  DatasetSpec spec = ImageNetLikeSpec(1, seed);
  spec.width = w;
  spec.height = h;
  spec.dim_jitter = 0;
  Image img = RenderScene(spec, 0, nullptr);
  if (out_img) *out_img = img;
  auto encoded = jpeg::Encode(img);
  EXPECT_TRUE(encoded.ok());
  return encoded.value();
}

TEST(FpgaDeviceTest, DecodesOneImage) {
  FpgaDevice device;
  Bytes data = EncodeScene(64, 48, 1);
  std::vector<uint8_t> out(32 * 32 * 3);
  FpgaCmd cmd;
  cmd.cookie = 7;
  cmd.jpeg = data;
  cmd.out = out.data();
  cmd.out_capacity = out.size();
  cmd.resize_w = 32;
  cmd.resize_h = 32;
  ASSERT_TRUE(device.SubmitCmd(cmd).ok());
  auto completions = device.WaitCompletions();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].cookie, 7u);
  EXPECT_TRUE(completions[0].status.ok());
  EXPECT_EQ(completions[0].width, 32);
  EXPECT_EQ(completions[0].height, 32);
  EXPECT_EQ(completions[0].channels, 3);
  EXPECT_EQ(completions[0].bytes_written, out.size());
}

TEST(FpgaDeviceTest, OutputMatchesSoftwareDecodeExactly) {
  FpgaDevice device;
  Bytes data = EncodeScene(100, 75, 2);
  std::vector<uint8_t> out(64 * 64 * 3);
  FpgaCmd cmd;
  cmd.jpeg = data;
  cmd.out = out.data();
  cmd.out_capacity = out.size();
  cmd.resize_w = 64;
  cmd.resize_h = 64;
  ASSERT_TRUE(device.SubmitCmd(cmd).ok());
  auto completions = device.WaitCompletions();
  ASSERT_EQ(completions.size(), 1u);
  ASSERT_TRUE(completions[0].status.ok());

  // Reference: plain software decode + the same resize.
  auto sw = jpeg::Decode(data);
  ASSERT_TRUE(sw.ok());
  auto resized = Resize(sw.value(), 64, 64, ResizeFilter::kArea);
  ASSERT_TRUE(resized.ok());
  EXPECT_EQ(0, std::memcmp(out.data(), resized.value().Data(), out.size()));
}

TEST(FpgaDeviceTest, ManyConcurrentCommandsAllComplete) {
  FpgaDevice device;
  constexpr int kImages = 40;
  std::vector<Bytes> blobs;
  std::vector<std::vector<uint8_t>> outs(kImages);
  for (int i = 0; i < kImages; ++i) {
    blobs.push_back(EncodeScene(48 + i % 16, 36 + i % 8, 100 + i));
    outs[i].resize(32 * 32 * 3);
  }
  int submitted = 0;
  std::map<uint64_t, bool> done;
  while (submitted < kImages) {
    FpgaCmd cmd;
    cmd.cookie = submitted;
    cmd.jpeg = blobs[submitted];
    cmd.out = outs[submitted].data();
    cmd.out_capacity = outs[submitted].size();
    cmd.resize_w = 32;
    cmd.resize_h = 32;
    Status s = device.SubmitCmd(cmd);
    if (s.ok()) {
      ++submitted;
      continue;
    }
    ASSERT_EQ(s.code(), StatusCode::kResourceExhausted);
    for (auto& c : device.WaitCompletions()) done[c.cookie] = c.status.ok();
  }
  while (done.size() < kImages) {
    for (auto& c : device.WaitCompletions()) done[c.cookie] = c.status.ok();
  }
  for (const auto& [cookie, ok] : done) EXPECT_TRUE(ok) << cookie;
  EXPECT_EQ(device.Completed(), static_cast<uint64_t>(kImages));
}

TEST(FpgaDeviceTest, CorruptInputYieldsErrorCompletion) {
  FpgaDevice device;
  Bytes garbage = {0xFF, 0xD8, 0x00, 0x01, 0x02};
  std::vector<uint8_t> out(16);
  FpgaCmd cmd;
  cmd.cookie = 1;
  cmd.jpeg = garbage;
  cmd.out = out.data();
  cmd.out_capacity = out.size();
  ASSERT_TRUE(device.SubmitCmd(cmd).ok());
  auto completions = device.WaitCompletions();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_FALSE(completions[0].status.ok());
}

TEST(FpgaDeviceTest, TooSmallOutputRegionRejected) {
  FpgaDevice device;
  Bytes data = EncodeScene(64, 48, 3);
  std::vector<uint8_t> out(8);  // far too small
  FpgaCmd cmd;
  cmd.jpeg = data;
  cmd.out = out.data();
  cmd.out_capacity = out.size();
  cmd.resize_w = 32;
  cmd.resize_h = 32;
  ASSERT_TRUE(device.SubmitCmd(cmd).ok());
  auto completions = device.WaitCompletions();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status.code(), StatusCode::kResourceExhausted);
}

TEST(FpgaDeviceTest, InvalidCmdRejectedAtSubmit) {
  FpgaDevice device;
  FpgaCmd no_out;
  no_out.jpeg = ByteSpan(reinterpret_cast<const uint8_t*>("x"), 1);
  EXPECT_EQ(device.SubmitCmd(no_out).code(), StatusCode::kInvalidArgument);
  std::vector<uint8_t> out(4);
  FpgaCmd no_input;
  no_input.out = out.data();
  no_input.out_capacity = out.size();
  EXPECT_EQ(device.SubmitCmd(no_input).code(), StatusCode::kInvalidArgument);
}

TEST(FpgaDeviceTest, SubmitAfterShutdownIsClosed) {
  FpgaDevice device;
  device.Shutdown();
  std::vector<uint8_t> out(4);
  FpgaCmd cmd;
  cmd.jpeg = ByteSpan(reinterpret_cast<const uint8_t*>("xy"), 2);
  cmd.out = out.data();
  cmd.out_capacity = out.size();
  EXPECT_EQ(device.SubmitCmd(cmd).code(), StatusCode::kClosed);
}

TEST(FpgaDeviceTest, NaturalSizeWhenNoResizeRequested) {
  FpgaDevice device;
  Image original;
  Bytes data = EncodeScene(40, 30, 4, &original);
  std::vector<uint8_t> out(40 * 30 * 3);
  FpgaCmd cmd;
  cmd.jpeg = data;
  cmd.out = out.data();
  cmd.out_capacity = out.size();
  ASSERT_TRUE(device.SubmitCmd(cmd).ok());
  auto completions = device.WaitCompletions();
  ASSERT_EQ(completions.size(), 1u);
  ASSERT_TRUE(completions[0].status.ok());
  EXPECT_EQ(completions[0].width, 40);
  EXPECT_EQ(completions[0].height, 30);
}

TEST(FpgaDeviceTest, CustomMirrorDecodesPpm) {
  // "Download" the PPM mirror onto the device (§3.1 pluggability).
  FpgaDeviceOptions options;
  options.custom_decoder = [](ByteSpan data) { return ppm::Decode(data); };
  FpgaDevice device(options);

  Image img(20, 10, 3);
  for (size_t i = 0; i < img.SizeBytes(); ++i) {
    img.Data()[i] = static_cast<uint8_t>(i * 3);
  }
  auto encoded = ppm::Encode(img);
  ASSERT_TRUE(encoded.ok());
  std::vector<uint8_t> out(20 * 10 * 3);
  FpgaCmd cmd;
  cmd.jpeg = encoded.value();
  cmd.out = out.data();
  cmd.out_capacity = out.size();
  ASSERT_TRUE(device.SubmitCmd(cmd).ok());
  auto completions = device.WaitCompletions();
  ASSERT_EQ(completions.size(), 1u);
  ASSERT_TRUE(completions[0].status.ok());
  EXPECT_EQ(0, std::memcmp(out.data(), img.Data(), out.size()));
}

}  // namespace
}  // namespace dlb::fpga
