// Fault injection against the emulated FPGA device: a quarantined way must
// keep serving byte-identical output through the CPU-decode fallback, DMA
// faults must surface as retryable completions or lost FINISH records, and
// none of it may wedge the device.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "codec/jpeg_decoder.h"
#include "codec/jpeg_encoder.h"
#include "common/fault.h"
#include "dataplane/synthetic_dataset.h"
#include "fpga/fpga_device.h"
#include "image/resize.h"
#include "telemetry/telemetry.h"

namespace dlb::fpga {
namespace {

Bytes EncodeScene(int w, int h, uint64_t seed) {
  DatasetSpec spec = ImageNetLikeSpec(1, seed);
  spec.width = w;
  spec.height = h;
  spec.dim_jitter = 0;
  Image img = RenderScene(spec, 0, nullptr);
  auto encoded = jpeg::Encode(img);
  EXPECT_TRUE(encoded.ok());
  return encoded.value();
}

fault::FaultSpec Spec(const std::string& text) {
  auto spec = fault::ParseFaultSpec(text);
  EXPECT_TRUE(spec.ok()) << spec.status().message();
  return spec.value();
}

TEST(FpgaFaultTest, QuarantinedWaysServeByteIdenticalViaCpuFallback) {
  // Stall rate 1: every way latches on its first command. The device must
  // keep producing output identical to the plain software decode path.
  fault::FaultInjector injector(Spec("fpga_unit_stall=1,seed=11"));
  FpgaDevice device;
  device.SetFaultInjector(&injector);

  constexpr int kImages = 12;
  std::vector<Bytes> blobs;
  std::vector<std::vector<uint8_t>> outs(kImages,
                                         std::vector<uint8_t>(32 * 32 * 3));
  for (int i = 0; i < kImages; ++i) {
    blobs.push_back(EncodeScene(64, 48, 100 + i));
  }
  for (int i = 0; i < kImages; ++i) {
    FpgaCmd cmd;
    cmd.cookie = static_cast<uint64_t>(i);
    cmd.jpeg = blobs[i];
    cmd.out = outs[i].data();
    cmd.out_capacity = outs[i].size();
    cmd.resize_w = 32;
    cmd.resize_h = 32;
    ASSERT_TRUE(device.SubmitCmd(cmd).ok());
  }
  int done = 0;
  while (done < kImages) {
    auto completions = device.WaitCompletions();
    ASSERT_FALSE(completions.empty());
    for (const auto& c : completions) {
      EXPECT_TRUE(c.status.ok()) << c.status.message();
      ++done;
    }
  }
  EXPECT_GT(device.QuarantinedWays(), 0);
  EXPECT_GT(device.CpuFallbackDecodes(), 0u);
  EXPECT_FALSE(device.QuarantineSummary().empty());
  for (int i = 0; i < kImages; ++i) {
    auto sw = jpeg::Decode(blobs[i]);
    ASSERT_TRUE(sw.ok());
    auto resized = Resize(sw.value(), 32, 32, ResizeFilter::kArea);
    ASSERT_TRUE(resized.ok());
    EXPECT_EQ(0, std::memcmp(outs[i].data(), resized.value().Data(),
                             outs[i].size()))
        << "image " << i;
  }
}

TEST(FpgaFaultTest, QuarantineGaugesReachTheRegistry) {
  telemetry::Telemetry telemetry;
  fault::FaultInjector injector(Spec("fpga_unit_stall=1,seed=21"));
  FpgaDevice device;
  device.SetTelemetry(&telemetry);
  device.SetFaultInjector(&injector);

  Bytes blob = EncodeScene(48, 32, 7);
  std::vector<uint8_t> out(32 * 32 * 3);
  FpgaCmd cmd;
  cmd.jpeg = blob;
  cmd.out = out.data();
  cmd.out_capacity = out.size();
  cmd.resize_w = 32;
  cmd.resize_h = 32;
  ASSERT_TRUE(device.SubmitCmd(cmd).ok());
  auto completions = device.WaitCompletions();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_TRUE(completions[0].status.ok());

  MetricRegistry& reg = telemetry.Registry();
  EXPECT_GE(reg.GetGauge("fpga.ways_quarantined")->Value(), 1.0);
  // One command touches exactly one huffman way; that way latched.
  EXPECT_GE(reg.GetGauge("fpga.huffman.quarantined")->Value(), 1.0);
  EXPECT_EQ(device.QuarantinedWays(FpgaDevice::Unit::kHuffman),
            static_cast<int>(reg.GetGauge("fpga.huffman.quarantined")->Value()));
  EXPECT_GE(reg.GetCounter("decode.cpu_fallback")->Value(), 1u);
}

TEST(FpgaFaultTest, DmaErrorCompletionsAreRetryable) {
  fault::FaultInjector injector(Spec("dma_error=1,seed=31"));
  FpgaDevice device;
  device.SetFaultInjector(&injector);

  Bytes blob = EncodeScene(64, 48, 3);
  std::vector<uint8_t> out(32 * 32 * 3);
  FpgaCmd cmd;
  cmd.cookie = 5;
  cmd.jpeg = blob;
  cmd.out = out.data();
  cmd.out_capacity = out.size();
  cmd.resize_w = 32;
  cmd.resize_h = 32;
  ASSERT_TRUE(device.SubmitCmd(cmd).ok());
  auto completions = device.WaitCompletions();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].cookie, 5u);
  EXPECT_EQ(completions[0].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(device.InFlight(), 0);
  EXPECT_EQ(injector.Injected(fault::FaultKind::kDmaError), 1u);
}

TEST(FpgaFaultTest, DmaDropLosesTheFinishRecordButNotTheWork) {
  fault::FaultInjector injector(Spec("dma_drop=1,seed=41"));
  FpgaDevice device;
  device.SetFaultInjector(&injector);

  constexpr int kImages = 4;
  std::vector<Bytes> blobs;
  std::vector<std::vector<uint8_t>> outs(kImages,
                                         std::vector<uint8_t>(32 * 32 * 3));
  for (int i = 0; i < kImages; ++i) blobs.push_back(EncodeScene(64, 48, i));
  for (int i = 0; i < kImages; ++i) {
    FpgaCmd cmd;
    cmd.cookie = static_cast<uint64_t>(i);
    cmd.jpeg = blobs[i];
    cmd.out = outs[i].data();
    cmd.out_capacity = outs[i].size();
    cmd.resize_w = 32;
    cmd.resize_h = 32;
    ASSERT_TRUE(device.SubmitCmd(cmd).ok());
  }
  // Every FINISH record is dropped: the work retires (in-flight drains to
  // zero, drop counter reaches kImages) but no completion ever surfaces.
  for (int spin = 0; spin < 2000 && device.DroppedCompletions() <
                                        static_cast<uint64_t>(kImages);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(device.DroppedCompletions(), static_cast<uint64_t>(kImages));
  EXPECT_EQ(device.InFlight(), 0);
  EXPECT_TRUE(device.WaitCompletionsFor(50).empty());
  // The DMA itself landed before the FINISH was lost.
  auto sw = jpeg::Decode(blobs[0]);
  ASSERT_TRUE(sw.ok());
  auto resized = Resize(sw.value(), 32, 32, ResizeFilter::kArea);
  ASSERT_TRUE(resized.ok());
  EXPECT_EQ(0, std::memcmp(outs[0].data(), resized.value().Data(),
                           outs[0].size()));
}

TEST(FpgaFaultTest, WaitCompletionsForTimesOutWhenIdle) {
  FpgaDevice device;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(device.WaitCompletionsFor(20).empty());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(15));
  EXPECT_FALSE(device.IsClosed());
  device.Shutdown();
  EXPECT_TRUE(device.IsClosed());
}

TEST(FpgaFaultTest, LatencySpikesDelayButNeverFail) {
  fault::FaultInjector injector(
      Spec("latency_spike=1,latency_spike_us=100,seed=51"));
  FpgaDevice device;
  device.SetFaultInjector(&injector);

  Bytes blob = EncodeScene(48, 32, 9);
  std::vector<uint8_t> out(32 * 32 * 3);
  FpgaCmd cmd;
  cmd.jpeg = blob;
  cmd.out = out.data();
  cmd.out_capacity = out.size();
  cmd.resize_w = 32;
  cmd.resize_h = 32;
  ASSERT_TRUE(device.SubmitCmd(cmd).ok());
  auto completions = device.WaitCompletions();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_TRUE(completions[0].status.ok());
  EXPECT_GE(injector.Injected(fault::FaultKind::kLatencySpike), 1u);
}

}  // namespace
}  // namespace dlb::fpga
