#include "gpu/gpu_sim.h"

#include <gtest/gtest.h>

namespace dlb::gpu {
namespace {

TEST(GpuSimTest, CopyTimeMatchesBandwidthPlusOverhead) {
  sim::Scheduler sched;
  GpuOptions opts;
  opts.pcie_bytes_per_sec = 10e9;
  opts.memcpy_overhead_s = 10e-6;
  GpuDevice gpu(&sched, nullptr, 0, opts);
  sim::SimTime done = 0;
  gpu.CopyH2D(100 * 1000 * 1000, 1, [&] { done = sched.Now(); });
  sched.Run();
  EXPECT_NEAR(sim::ToSeconds(done), 0.01 + 10e-6, 1e-5);
}

TEST(GpuSimTest, PerItemCopiesCostMore) {
  auto run = [](int pieces) {
    sim::Scheduler sched;
    GpuDevice gpu(&sched, nullptr, 0);
    gpu.CopyH2D(1000 * 1000, pieces, nullptr);
    sched.Run();
    return sim::ToSeconds(sched.Now());
  };
  const double block = run(1);
  const double per_item = run(512);
  EXPECT_GT(per_item, block + 0.005);  // 511 extra 12us overheads
}

TEST(GpuSimTest, ComputeRunsAtCapacity) {
  sim::Scheduler sched;
  GpuDevice gpu(&sched, nullptr, 0);
  sim::SimTime done = 0;
  gpu.SubmitCompute(0.25, 1.0, [&] { done = sched.Now(); });
  sched.Run();
  EXPECT_NEAR(sim::ToSeconds(done), 0.25, 1e-6);
}

TEST(GpuSimTest, ContentionSlowsBothJobs) {
  // The nvJPEG effect: decode work on the same GPU slows inference.
  sim::Scheduler sched;
  GpuDevice gpu(&sched, nullptr, 0);
  sim::SimTime infer_done = 0;
  gpu.SubmitCompute(0.5, 1.0, [&] { infer_done = sched.Now(); });
  gpu.SubmitCompute(0.5, 1.0, nullptr);
  sched.Run();
  EXPECT_NEAR(sim::ToSeconds(infer_done), 1.0, 1e-3);
}

TEST(GpuSimTest, LaunchCoresChargedWhileBusy) {
  sim::Scheduler sched;
  sim::CpuAccountant cpu(&sched);
  GpuOptions opts;
  opts.launch_cores = 0.95;
  GpuDevice gpu(&sched, &cpu, 0, opts);
  gpu.SubmitCompute(2.0, 1.0, nullptr);
  sched.Run();
  gpu.ChargeLaunchCores();
  EXPECT_NEAR(cpu.Cores("kernel_launch"), 0.95, 1e-6);
}

TEST(GpuSimTest, LaunchChargeDoesNotDoubleCountOverlap) {
  // Two overlapping jobs share one launch thread, not two.
  sim::Scheduler sched;
  sim::CpuAccountant cpu(&sched);
  GpuOptions opts;
  opts.launch_cores = 1.0;
  GpuDevice gpu(&sched, &cpu, 0, opts);
  gpu.SubmitCompute(0.5, 1.0, nullptr);
  gpu.SubmitCompute(0.5, 1.0, nullptr);  // both finish at t=1s
  sched.Run();
  gpu.ChargeLaunchCores();
  EXPECT_NEAR(cpu.Cores("kernel_launch"), 1.0, 1e-6);
}

TEST(GpuSimTest, TransformCpuChargedPerCopyPiece) {
  sim::Scheduler sched;
  sim::CpuAccountant cpu(&sched);
  GpuDevice gpu(&sched, &cpu, 0);
  gpu.CopyH2D(1000, 100, nullptr);
  sched.Run();
  const auto& cats = cpu.CoreSecondsByCategory();
  ASSERT_TRUE(cats.count("transform"));
  EXPECT_GT(cats.at("transform"), 0.0);
}

TEST(GpuSimTest, UtilizationReflectsIdleTime) {
  sim::Scheduler sched;
  GpuDevice gpu(&sched, nullptr, 0);
  gpu.SubmitCompute(1.0, 1.0, nullptr);
  sched.Run();
  sched.RunUntil(sim::Seconds(2.0));
  EXPECT_NEAR(gpu.ComputeUtilization(), 0.5, 0.01);
}

}  // namespace
}  // namespace dlb::gpu
