#include "gpu/model_zoo.h"

#include <gtest/gtest.h>

namespace dlb::gpu {
namespace {

TEST(ModelZooTest, AllSixPaperModelsPresent) {
  EXPECT_EQ(AllModels().size(), 6u);
  for (const char* name : {"lenet5", "alexnet", "resnet18", "googlenet",
                           "vgg16", "resnet50"}) {
    auto m = FindModel(name);
    ASSERT_TRUE(m.ok()) << name;
    EXPECT_EQ(m.value()->name, name);
  }
}

TEST(ModelZooTest, UnknownModelIsNotFound) {
  EXPECT_EQ(FindModel("bert").status().code(), StatusCode::kNotFound);
}

TEST(ModelZooTest, PaperAnchorsHold) {
  // Fig. 2: AlexNet boundary 2496 img/s on one P100; 93.2% 2-GPU scaling.
  EXPECT_DOUBLE_EQ(AlexNet().train_rate_per_gpu, 2496.0);
  EXPECT_NEAR(AlexNet().train_rate_per_gpu * 2 * AlexNet().two_gpu_scaling,
              4652.0, 5.0);
  // §5.1 batch sizes.
  EXPECT_EQ(LeNet5().train_batch, 512);
  EXPECT_EQ(AlexNet().train_batch, 256);
  EXPECT_EQ(ResNet18().train_batch, 128);
}

TEST(ModelZooTest, TrainBatchSecondsScalesLinearly) {
  const DlModel& m = AlexNet();
  EXPECT_NEAR(m.TrainBatchSeconds(256), 256 / 2496.0, 1e-9);
  EXPECT_NEAR(m.TrainBatchSeconds(512), 2 * m.TrainBatchSeconds(256), 1e-9);
}

TEST(ModelZooTest, InferBatchAmortizesLaunchOverhead) {
  const DlModel& m = GoogLeNet();
  const double per_img_1 = m.InferBatchSeconds(1) / 1.0;
  const double per_img_32 = m.InferBatchSeconds(32) / 32.0;
  EXPECT_LT(per_img_32, per_img_1);  // larger batches amortise the launch
  // Saturated throughput approaches the zoo rate from below.
  EXPECT_LT(1.0 / per_img_32, m.infer_rate_per_gpu);
  EXPECT_GT(1.0 / per_img_32, 0.6 * m.infer_rate_per_gpu);
}

TEST(ModelZooTest, HeavierModelsAreSlower) {
  EXPECT_LT(Vgg16().infer_rate_per_gpu, GoogLeNet().infer_rate_per_gpu);
  EXPECT_LT(ResNet18().train_rate_per_gpu, AlexNet().train_rate_per_gpu);
  EXPECT_GT(Vgg16().param_bytes, ResNet50().param_bytes);
}

TEST(ModelZooTest, MnistModelHasMnistGeometry) {
  EXPECT_EQ(LeNet5().input_w, 28);
  EXPECT_EQ(LeNet5().input_c, 1);
  EXPECT_EQ(AlexNet().input_c, 3);
}

}  // namespace
}  // namespace dlb::gpu
