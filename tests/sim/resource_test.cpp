#include "sim/resource.h"

#include <gtest/gtest.h>

namespace dlb::sim {
namespace {

TEST(ResourceTest, SingleServerSerializes) {
  Scheduler s;
  Resource r(&s, 1, "unit");
  SimTime done1 = 0, done2 = 0;
  r.Submit(100, [&] { done1 = s.Now(); });
  r.Submit(100, [&] { done2 = s.Now(); });
  s.Run();
  EXPECT_EQ(done1, 100u);
  EXPECT_EQ(done2, 200u);  // queued behind the first
  EXPECT_EQ(r.Completed(), 2u);
}

TEST(ResourceTest, MultiServerRunsInParallel) {
  Scheduler s;
  Resource r(&s, 4, "quad");
  int done = 0;
  for (int i = 0; i < 4; ++i) r.Submit(100, [&] { ++done; });
  s.Run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(s.Now(), 100u);  // all four in parallel
}

TEST(ResourceTest, FiveJobsOnFourServers) {
  Scheduler s;
  Resource r(&s, 4, "quad");
  SimTime last = 0;
  for (int i = 0; i < 5; ++i) r.Submit(100, [&] { last = s.Now(); });
  s.Run();
  EXPECT_EQ(last, 200u);  // the fifth waits for a free server
}

TEST(ResourceTest, UtilizationAccounting) {
  Scheduler s;
  Resource r(&s, 2, "pair");
  r.Submit(100, nullptr);
  r.Submit(100, nullptr);
  s.Run();
  // Both servers busy for the full 100ns horizon.
  EXPECT_DOUBLE_EQ(r.Utilization(), 1.0);
  EXPECT_EQ(r.BusyTime(), 200u);
}

TEST(ResourceTest, WaitHistogramRecordsQueueing) {
  Scheduler s;
  Resource r(&s, 1, "unit");
  r.Submit(100, nullptr);
  r.Submit(100, nullptr);  // waits 100ns
  s.Run();
  EXPECT_EQ(r.WaitHistogram().Count(), 2u);
  EXPECT_EQ(r.WaitHistogram().Max(), 100u);
}

TEST(ResourceTest, CompletionCallbackCanResubmit) {
  Scheduler s;
  Resource r(&s, 1, "unit");
  int rounds = 0;
  std::function<void()> again = [&] {
    if (++rounds < 5) r.Submit(10, again);
  };
  r.Submit(10, again);
  s.Run();
  EXPECT_EQ(rounds, 5);
  EXPECT_EQ(s.Now(), 50u);
}

}  // namespace
}  // namespace dlb::sim
