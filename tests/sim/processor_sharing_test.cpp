#include "sim/processor_sharing.h"

#include <gtest/gtest.h>

namespace dlb::sim {
namespace {

TEST(ProcessorSharingTest, SingleJobRunsAtFullCapacity) {
  Scheduler s;
  ProcessorSharing ps(&s, 100.0, "gpu");  // 100 units/s
  SimTime done = 0;
  ps.Submit(50.0, 1.0, [&] { done = s.Now(); });
  s.Run();
  EXPECT_NEAR(ToSeconds(done), 0.5, 1e-6);
}

TEST(ProcessorSharingTest, TwoEqualJobsShareCapacity) {
  Scheduler s;
  ProcessorSharing ps(&s, 100.0, "gpu");
  SimTime done1 = 0, done2 = 0;
  ps.Submit(50.0, 1.0, [&] { done1 = s.Now(); });
  ps.Submit(50.0, 1.0, [&] { done2 = s.Now(); });
  s.Run();
  // Both jobs progress at 50 units/s -> both finish at t=1s.
  EXPECT_NEAR(ToSeconds(done1), 1.0, 1e-6);
  EXPECT_NEAR(ToSeconds(done2), 1.0, 1e-6);
}

TEST(ProcessorSharingTest, WeightsSkewService) {
  Scheduler s;
  ProcessorSharing ps(&s, 100.0, "gpu");
  SimTime heavy_done = 0, light_done = 0;
  // Weight 3 job gets 75 units/s, weight 1 job gets 25 units/s.
  ps.Submit(75.0, 3.0, [&] { heavy_done = s.Now(); });
  ps.Submit(25.0, 1.0, [&] { light_done = s.Now(); });
  s.Run();
  EXPECT_NEAR(ToSeconds(heavy_done), 1.0, 1e-6);
  EXPECT_NEAR(ToSeconds(light_done), 1.0, 1e-6);
}

TEST(ProcessorSharingTest, LateArrivalSlowsExistingJob) {
  Scheduler s;
  ProcessorSharing ps(&s, 100.0, "gpu");
  SimTime first_done = 0;
  ps.Submit(100.0, 1.0, [&] { first_done = s.Now(); });
  // At t=0.5s, half the first job (50 units) is done; a second job arrives
  // and halves the rate, so the remaining 50 units take 1.0s more.
  s.At(Seconds(0.5), [&] { ps.Submit(200.0, 1.0, nullptr); });
  s.Run();
  EXPECT_NEAR(ToSeconds(first_done), 1.5, 1e-3);
}

TEST(ProcessorSharingTest, DepartureSpeedsUpRemainder) {
  Scheduler s;
  ProcessorSharing ps(&s, 100.0, "gpu");
  SimTime long_done = 0;
  ps.Submit(10.0, 1.0, nullptr);              // finishes at 0.2s (shared)
  ps.Submit(90.0, 1.0, [&] { long_done = s.Now(); });
  s.Run();
  // Shared until 0.2s (10 units each), then full rate for remaining 80.
  EXPECT_NEAR(ToSeconds(long_done), 0.2 + 0.8, 1e-3);
}

TEST(ProcessorSharingTest, WorkConservation) {
  Scheduler s;
  ProcessorSharing ps(&s, 50.0, "gpu");
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    ps.Submit(5.0, 1.0 + (i % 3), [&] { ++completed; });
  }
  s.Run();
  EXPECT_EQ(completed, 10);
  EXPECT_NEAR(ps.WorkDone(), 50.0, 1e-6);
  // Total work 50 units at 50 units/s => exactly 1s busy.
  EXPECT_NEAR(ToSeconds(s.Now()), 1.0, 1e-3);
}

TEST(ProcessorSharingTest, UtilizationTracksBusyTime) {
  Scheduler s;
  ProcessorSharing ps(&s, 100.0, "gpu");
  ps.Submit(50.0, 1.0, nullptr);
  s.Run();                 // busy 0.5s
  s.RunUntil(Seconds(1.0));  // idle 0.5s
  EXPECT_NEAR(ps.Utilization(), 0.5, 1e-3);
}

}  // namespace
}  // namespace dlb::sim
