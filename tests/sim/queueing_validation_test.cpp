// Validates the DES primitives against closed-form queueing theory — if
// these hold, the figure-level results rest on a sound substrate.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "sim/resource.h"
#include "sim/scheduler.h"

namespace dlb::sim {
namespace {

/// Drive a Resource with Poisson arrivals and deterministic service, and
/// return the mean queue wait (ns).
double MeasureMd1Wait(double lambda, double service_s, int jobs) {
  Scheduler sched;
  Resource server(&sched, 1, "srv");
  Rng rng(1234);
  // Pre-schedule all arrivals (independent exponential gaps).
  SimTime t = 0;
  for (int i = 0; i < jobs; ++i) {
    t += Seconds(rng.Exponential(1.0 / lambda));
    sched.At(t, [&server, service_s] {
      server.Submit(Seconds(service_s), nullptr);
    });
  }
  sched.Run();
  return static_cast<double>(server.WaitHistogram().Mean());
}

TEST(QueueingValidationTest, MD1MeanWaitMatchesPollaczekKhinchine) {
  // M/D/1: Wq = rho * S / (2 (1 - rho)).
  const double service = 0.001;  // 1 ms
  for (double rho : {0.3, 0.5, 0.7}) {
    const double lambda = rho / service;
    const double measured_s = MeasureMd1Wait(lambda, service, 40000) / 1e9;
    const double expected_s = rho * service / (2.0 * (1.0 - rho));
    EXPECT_NEAR(measured_s, expected_s, expected_s * 0.15) << "rho=" << rho;
  }
}

TEST(QueueingValidationTest, UtilizationEqualsRho) {
  const double service = 0.002;
  const double rho = 0.6;
  Scheduler sched;
  Resource server(&sched, 1, "srv");
  Rng rng(99);
  SimTime t = 0;
  for (int i = 0; i < 20000; ++i) {
    t += Seconds(rng.Exponential(service / rho));
    sched.At(t, [&server, service] {
      server.Submit(Seconds(service), nullptr);
    });
  }
  sched.Run();
  // Utilisation over the arrival horizon approaches rho.
  EXPECT_NEAR(server.Utilization(), rho, 0.05);
}

TEST(QueueingValidationTest, MultiServerErlangRegime) {
  // M/D/4 at rho=0.9 waits FAR less than M/D/1 at the same total load —
  // the reason the FPGA's 4-way Huffman unit smooths latency, not just
  // throughput.
  const double service = 0.001;
  const double total_lambda = 0.9 * 4 / service / 4;  // rho=0.9 per server
  auto measure = [&](int servers) {
    Scheduler sched;
    Resource pool(&sched, servers, "pool");
    Rng rng(7);
    SimTime t = 0;
    for (int i = 0; i < 30000; ++i) {
      t += Seconds(rng.Exponential(1.0 / (total_lambda * servers)));
      sched.At(t, [&pool, service] {
        pool.Submit(Seconds(service), nullptr);
      });
    }
    sched.Run();
    return static_cast<double>(pool.WaitHistogram().Mean());
  };
  const double one = measure(1);   // arrivals scaled with servers
  const double four = measure(4);
  EXPECT_LT(four, one * 0.5);
}

TEST(QueueingValidationTest, LittlesLawOnThroughput) {
  // Closed-loop with W outstanding jobs: X = W / (R + S) for a single
  // server with zero think time.
  Scheduler sched;
  Resource server(&sched, 1, "srv");
  const double service = 0.005;
  constexpr int kWindow = 4;
  int completed = 0;
  std::function<void()> submit = [&] {
    server.Submit(Seconds(service), [&] {
      ++completed;
      if (completed < 2000) submit();
    });
  };
  for (int i = 0; i < kWindow; ++i) submit();
  sched.Run();
  const double throughput = completed / ToSeconds(sched.Now());
  EXPECT_NEAR(throughput, 1.0 / service, 1.0 / service * 0.02);
}

}  // namespace
}  // namespace dlb::sim
