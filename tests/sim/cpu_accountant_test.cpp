#include "sim/cpu_accountant.h"

#include <gtest/gtest.h>

namespace dlb::sim {
namespace {

TEST(CpuAccountantTest, CoresIsCoreSecondsOverElapsed) {
  Scheduler s;
  CpuAccountant cpu(&s);
  s.At(Seconds(2.0), [] {});
  s.Run();
  cpu.Charge("preprocess", 1.0);  // 1 core-second over 2 seconds
  EXPECT_NEAR(cpu.Cores("preprocess"), 0.5, 1e-9);
}

TEST(CpuAccountantTest, TotalSumsCategories) {
  Scheduler s;
  CpuAccountant cpu(&s);
  s.At(Seconds(1.0), [] {});
  s.Run();
  cpu.Charge("a", 0.3);
  cpu.Charge("b", 0.7);
  EXPECT_NEAR(cpu.TotalCores(), 1.0, 1e-9);
}

TEST(CpuAccountantTest, ChargeIntervalConvertsDuration) {
  Scheduler s;
  CpuAccountant cpu(&s);
  s.At(Seconds(4.0), [] {});
  s.Run();
  cpu.ChargeInterval("launch", Seconds(4.0), 0.95);
  EXPECT_NEAR(cpu.Cores("launch"), 0.95, 1e-9);
}

TEST(CpuAccountantTest, UnknownCategoryIsZero) {
  Scheduler s;
  CpuAccountant cpu(&s);
  s.At(Seconds(1.0), [] {});
  s.Run();
  EXPECT_EQ(cpu.Cores("nope"), 0.0);
}

TEST(CpuAccountantTest, NegativeChargeIgnored) {
  Scheduler s;
  CpuAccountant cpu(&s);
  s.At(Seconds(1.0), [] {});
  s.Run();
  cpu.Charge("x", -5.0);
  EXPECT_EQ(cpu.Cores("x"), 0.0);
}

}  // namespace
}  // namespace dlb::sim
