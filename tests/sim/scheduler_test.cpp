#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace dlb::sim {
namespace {

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.At(300, [&] { order.push_back(3); });
  s.At(100, [&] { order.push_back(1); });
  s.At(200, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 300u);
}

TEST(SchedulerTest, SameTimeEventsAreFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.At(50, [&order, i] { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, AfterIsRelativeToNow) {
  Scheduler s;
  SimTime fired_at = 0;
  s.At(100, [&] {
    s.After(50, [&] { fired_at = s.Now(); });
  });
  s.Run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(SchedulerTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler s;
  int fired = 0;
  s.At(100, [&] { ++fired; });
  s.At(200, [&] { ++fired; });
  s.RunUntil(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 150u);
  s.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, EventsCanCascade) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.After(1, recurse);
  };
  s.At(0, recurse);
  s.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.Now(), 99u);
  EXPECT_EQ(s.EventsProcessed(), 100u);
}

TEST(SchedulerTest, TimeConversionHelpers) {
  EXPECT_EQ(Seconds(1.5), 1500000000ull);
  EXPECT_EQ(Millis(2.0), 2000000ull);
  EXPECT_EQ(Micros(3.0), 3000ull);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.0)), 2.0);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(7.0)), 7.0);
}

TEST(SchedulerTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      s.At((i * 37) % 13, [&order, i] { order.push_back(i); });
    }
    s.Run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dlb::sim
