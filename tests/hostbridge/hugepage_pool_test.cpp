#include "hostbridge/hugepage_pool.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

namespace dlb {
namespace {

TEST(HugePagePoolTest, AllBuffersStartFree) {
  HugePagePool pool(1024, 4);
  EXPECT_EQ(pool.FreeQueue().Size(), 4u);
  EXPECT_EQ(pool.FullQueue().Size(), 0u);
  EXPECT_EQ(pool.BufferBytes(), 1024u);
  EXPECT_EQ(pool.ArenaBytes(), 4096u);
}

TEST(HugePagePoolTest, BuffersAreContiguousAndDistinct) {
  HugePagePool pool(512, 4);
  std::set<const uint8_t*> datas;
  std::set<uint64_t> phys;
  std::vector<BatchBuffer*> buffers;
  while (auto b = pool.FreeQueue().TryPop()) {
    datas.insert((*b)->data);
    phys.insert((*b)->phys_addr);
    buffers.push_back(*b);
  }
  EXPECT_EQ(datas.size(), 4u);
  EXPECT_EQ(phys.size(), 4u);
  // Adjacent buffers are exactly buffer_bytes apart.
  auto it = datas.begin();
  const uint8_t* prev = *it++;
  for (; it != datas.end(); ++it) {
    EXPECT_EQ(*it - prev, 512);
    prev = *it;
  }
}

TEST(HugePagePoolTest, AddressTranslationRoundTrips) {
  HugePagePool pool(256, 2);
  auto b = pool.FreeQueue().TryPop();
  ASSERT_TRUE(b.has_value());
  BatchBuffer* buf = *b;
  auto phys = pool.VirtToPhys(buf->data + 100);
  ASSERT_TRUE(phys.ok());
  EXPECT_EQ(phys.value(), buf->phys_addr + 100);
  auto virt = pool.PhysToVirt(phys.value());
  ASSERT_TRUE(virt.ok());
  EXPECT_EQ(virt.value(), buf->data + 100);
}

TEST(HugePagePoolTest, TranslationRejectsForeignAddresses) {
  HugePagePool pool(256, 2);
  uint8_t local = 0;
  EXPECT_FALSE(pool.VirtToPhys(&local).ok());
  EXPECT_FALSE(pool.PhysToVirt(0x1234).ok());
  EXPECT_FALSE(pool.PhysToVirt(HugePagePool::kPhysBase + 512).ok());
}

TEST(HugePagePoolTest, RecycleClearsItemsAndReturnsToFree) {
  HugePagePool pool(256, 1);
  auto b = pool.FreeQueue().TryPop();
  ASSERT_TRUE(b.has_value());
  (*b)->items.push_back(BatchItem{});
  pool.Recycle(*b);
  auto again = pool.FreeQueue().TryPop();
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE((*again)->items.empty());
  EXPECT_EQ(*again, *b);
}

TEST(HugePagePoolTest, RecycleNullIsNoOp) {
  HugePagePool pool(256, 1);
  pool.Recycle(nullptr);
  EXPECT_EQ(pool.FreeQueue().Size(), 1u);
}

TEST(HugePagePoolTest, PhysBaseIsObviouslyFake) {
  HugePagePool pool(256, 1);
  auto b = pool.FreeQueue().TryPop();
  EXPECT_GE((*b)->phys_addr, HugePagePool::kPhysBase);
}

TEST(HugePagePoolTest, CloseUnblocksWaiters) {
  HugePagePool pool(256, 1);
  (void)pool.FreeQueue().TryPop();  // drain
  std::thread waiter([&pool] {
    auto b = pool.FreeQueue().Pop();
    EXPECT_FALSE(b.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pool.Close();
  waiter.join();
}

}  // namespace
}  // namespace dlb
