#include "hostbridge/data_collector.h"

#include <gtest/gtest.h>

#include <map>

#include "dataplane/synthetic_dataset.h"

namespace dlb {
namespace {

Dataset SmallDataset(size_t n) {
  DatasetSpec spec = MnistLikeSpec(n);
  auto ds = GenerateDataset(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(DiskDataCollectorTest, WalksWholeEpochs) {
  Dataset ds = SmallDataset(10);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  EXPECT_EQ(collector.EpochSize(), 10u);
  std::map<const FileRecord*, int> seen;
  for (int i = 0; i < 30; ++i) {  // three epochs
    auto file = collector.Next();
    ASSERT_TRUE(file.ok());
    EXPECT_FALSE(file.value().bytes.empty());
    seen[file.value().record]++;
  }
  EXPECT_EQ(seen.size(), 10u);
  for (const auto& [_, count] : seen) EXPECT_EQ(count, 3);
}

TEST(DiskDataCollectorTest, LabelsComeFromManifest) {
  Dataset ds = SmallDataset(5);
  DiskDataCollector collector(&ds.manifest, ds.store.get(), false, 1);
  for (int i = 0; i < 5; ++i) {
    auto file = collector.Next();
    ASSERT_TRUE(file.ok());
    EXPECT_EQ(file.value().label, file.value().record->label);
  }
}

TEST(DiskDataCollectorTest, EmptyManifestCloses) {
  Manifest empty;
  InMemoryBlobStore store;
  DiskDataCollector collector(&empty, &store, false, 1);
  EXPECT_EQ(collector.Next().status().code(), StatusCode::kClosed);
}

TEST(NetDataCollectorTest, DrainsQueueInOrder) {
  BoundedQueue<NetworkImage> rx(8);
  for (uint64_t i = 0; i < 3; ++i) {
    NetworkImage img;
    img.payload = {static_cast<uint8_t>(i)};
    img.request_id = 100 + i;
    ASSERT_TRUE(rx.Push(std::move(img)).ok());
  }
  NetDataCollector collector(&rx);
  for (uint64_t i = 0; i < 3; ++i) {
    auto file = collector.Next();
    ASSERT_TRUE(file.ok());
    EXPECT_EQ(file.value().request_id, 100 + i);
    EXPECT_EQ(file.value().bytes[0], i);
  }
}

TEST(NetDataCollectorTest, ClosedQueueCloses) {
  BoundedQueue<NetworkImage> rx(2);
  rx.Close();
  NetDataCollector collector(&rx);
  EXPECT_EQ(collector.Next().status().code(), StatusCode::kClosed);
}

TEST(BoundedCollectorTest, StopsAfterBudget) {
  Dataset ds = SmallDataset(10);
  DiskDataCollector inner(&ds.manifest, ds.store.get(), false, 1);
  BoundedCollector bounded(&inner, 4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bounded.Next().ok());
  EXPECT_EQ(bounded.Next().status().code(), StatusCode::kClosed);
}

}  // namespace
}  // namespace dlb
