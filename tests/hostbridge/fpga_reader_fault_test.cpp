// Recovery policy of the FPGAReader under injected faults: bounded
// retry-with-backoff on transient DMA errors, forced batch retirement when
// FINISH records are lost, and per-image skip (never batch abort) on
// corrupted payloads. Fault schedules interleave across device worker
// threads, so tests assert invariants, not exact fault positions.
#include "hostbridge/fpga_reader.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/fault.h"
#include "dataplane/synthetic_dataset.h"

namespace dlb {
namespace {

Dataset SmallDataset(size_t n) {
  DatasetSpec spec = ImageNetLikeSpec(n);
  spec.width = 64;
  spec.height = 48;
  spec.dim_jitter = 0.1;
  auto ds = GenerateDataset(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

fault::FaultSpec Spec(const std::string& text) {
  auto spec = fault::ParseFaultSpec(text);
  EXPECT_TRUE(spec.ok()) << spec.status().message();
  return spec.value();
}

struct FaultRig {
  FaultRig(size_t images, size_t batch_size, const std::string& faults,
           FpgaReaderOptions opts = {})
      : dataset(SmallDataset(images)),
        collector(&dataset.manifest, dataset.store.get(), false, 1),
        bounded(&collector, images),
        pool(batch_size * 32 * 32 * 3, 4),
        injector(Spec(faults)) {
    opts.batch_size = batch_size;
    opts.resize_w = 32;
    opts.resize_h = 32;
    options = opts;
    device.SetFaultInjector(&injector);
    reader = std::make_unique<FpgaReader>(&device, &bounded, &pool, options);
    reader->SetFaultInjector(&injector);
  }

  /// Drain every produced batch; returns (ok items, failed items).
  std::pair<size_t, size_t> DrainAll(size_t expect_images) {
    size_t ok = 0, failed = 0;
    while (ok + failed < expect_images) {
      auto buffer = pool.FullQueue().Pop();
      if (!buffer.has_value()) break;
      for (const BatchItem& item : (*buffer)->items) {
        if (item.ok) {
          ++ok;
          EXPECT_EQ(item.error, StatusCode::kOk);
        } else {
          ++failed;
          EXPECT_NE(item.error, StatusCode::kOk);
        }
      }
      pool.Recycle(*buffer);
    }
    return {ok, failed};
  }

  Dataset dataset;
  DiskDataCollector collector;
  BoundedCollector bounded;
  fpga::FpgaDevice device;
  HugePagePool pool;
  fault::FaultInjector injector;
  FpgaReaderOptions options;
  std::unique_ptr<FpgaReader> reader;
};

TEST(FpgaReaderFaultTest, TransientDmaErrorsAreRetriedToSuccess) {
  FpgaReaderOptions opts;
  opts.dma_retry_limit = 10;  // dma_error=0.3 => P(10 straight fails) ~ 1e-5
  opts.retry_backoff_us = 10;
  FaultRig rig(/*images=*/16, /*batch=*/8, "dma_error=0.3,seed=1", opts);
  rig.reader->Start();
  auto [ok, failed] = rig.DrainAll(16);
  rig.reader->Stop();
  EXPECT_EQ(ok, 16u);
  EXPECT_EQ(failed, 0u);
  // The rate guarantees at least one transient completion across 16 slots.
  EXPECT_GT(rig.reader->RetryAttempts(), 0u);
  EXPECT_EQ(rig.reader->RetriesExhausted(), 0u);
  EXPECT_EQ(rig.reader->DecodeFailures(), 0u);
}

TEST(FpgaReaderFaultTest, RetryExhaustionFailsTheSlotNotTheBatch) {
  FpgaReaderOptions opts;
  opts.dma_retry_limit = 2;
  opts.retry_backoff_us = 10;
  FaultRig rig(/*images=*/8, /*batch=*/4, "dma_error=1,seed=2", opts);
  rig.reader->Start();
  auto [ok, failed] = rig.DrainAll(8);
  rig.reader->Stop();
  // Permanent DMA failure: every slot exhausts its retries and is marked
  // failed with the transient code — but both batches still retire.
  EXPECT_EQ(ok, 0u);
  EXPECT_EQ(failed, 8u);
  EXPECT_EQ(rig.reader->BatchesProduced(), 2u);
  EXPECT_EQ(rig.reader->RetriesExhausted(), 8u);
  EXPECT_EQ(rig.reader->RetryAttempts(), 8u * 2u);
  EXPECT_EQ(rig.reader->DecodeFailures(), 8u);
}

TEST(FpgaReaderFaultTest, ExhaustedSlotsCarryTheUnavailableCode) {
  FpgaReaderOptions opts;
  opts.dma_retry_limit = 1;
  opts.retry_backoff_us = 10;
  FaultRig rig(/*images=*/4, /*batch=*/4, "dma_error=1,seed=3", opts);
  rig.reader->Start();
  auto buffer = rig.pool.FullQueue().Pop();
  ASSERT_TRUE(buffer.has_value());
  for (const BatchItem& item : (*buffer)->items) {
    EXPECT_FALSE(item.ok);
    EXPECT_EQ(item.error, StatusCode::kUnavailable);
  }
  rig.pool.Recycle(*buffer);
  rig.reader->Stop();
}

TEST(FpgaReaderFaultTest, LostFinishRecordsAreReapedByTimeout) {
  FpgaReaderOptions opts;
  opts.completion_timeout_ms = 50;
  FaultRig rig(/*images=*/8, /*batch=*/4, "dma_drop=1,seed=4", opts);
  rig.reader->Start();
  // Every FINISH record is lost; without the timeout reaper this would
  // hang forever. The reaper retires the batches with all slots failed.
  auto [ok, failed] = rig.DrainAll(8);
  rig.reader->Stop();
  EXPECT_EQ(ok, 0u);
  EXPECT_EQ(failed, 8u);
  EXPECT_GE(rig.reader->BatchTimeouts(), 1u);
  EXPECT_EQ(rig.reader->BatchesProduced(), 2u);
  for (int spin = 0; spin < 200 && !rig.reader->Finished(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(rig.reader->Finished());
}

TEST(FpgaReaderFaultTest, CorruptedPayloadsAreSkippedNotFatal) {
  FaultRig rig(/*images=*/16, /*batch=*/8, "corrupt_jpeg=0.5,seed=5");
  rig.reader->Start();
  auto [ok, failed] = rig.DrainAll(16);
  rig.reader->Stop();
  EXPECT_EQ(ok + failed, 16u);
  // Corruption can only explain the failures that occurred (a truncated
  // tail can still decode, so failed <= injected), and at rate 0.5 over 16
  // images at least one corruption fires.
  EXPECT_GT(rig.injector.Injected(fault::FaultKind::kCorruptJpeg), 0u);
  EXPECT_LE(failed, rig.injector.Injected(fault::FaultKind::kCorruptJpeg));
  EXPECT_EQ(rig.reader->DecodeFailures(), failed);
  EXPECT_EQ(rig.reader->ImagesCompleted(), 16u);  // counts failed slots too
}

TEST(FpgaReaderFaultTest, AggressiveMixedFaultsNeverHangTheReader) {
  FpgaReaderOptions opts;
  opts.dma_retry_limit = 3;
  opts.retry_backoff_us = 10;
  opts.completion_timeout_ms = 100;
  FaultRig rig(/*images=*/32, /*batch=*/8,
               "corrupt_jpeg=0.2,dma_error=0.2,dma_drop=0.1,"
               "fpga_unit_stall=0.05,seed=6",
               opts);
  rig.reader->Start();
  auto [ok, failed] = rig.DrainAll(32);
  rig.reader->Stop();
  // Every image is accounted exactly once, whatever mix of faults hit it.
  EXPECT_EQ(ok + failed, 32u);
  EXPECT_EQ(rig.reader->ImagesCompleted(), 32u);
  EXPECT_EQ(rig.reader->DecodeFailures(), failed);
  EXPECT_EQ(rig.reader->BatchesProduced(), 4u);
}

}  // namespace
}  // namespace dlb
