// Integration: FPGAReader (Algorithm 1) + HugePage pool (Algorithm 2) +
// emulated FPGA device, end to end to the Full_Batch_Queue.
#include "hostbridge/fpga_reader.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <set>
#include <thread>

#include "codec/jpeg_decoder.h"
#include "dataplane/synthetic_dataset.h"
#include "image/resize.h"

namespace dlb {
namespace {

Dataset SmallDataset(size_t n, int w = 64, int h = 48) {
  DatasetSpec spec = ImageNetLikeSpec(n);
  spec.width = w;
  spec.height = h;
  spec.dim_jitter = 0.1;
  auto ds = GenerateDataset(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

struct Rig {
  explicit Rig(size_t dataset_size, size_t batch_size, uint64_t max_images,
               size_t pool_buffers = 4)
      : dataset(SmallDataset(dataset_size)),
        collector(&dataset.manifest, dataset.store.get(), false, 1),
        bounded(&collector, max_images),
        pool(batch_size * 32 * 32 * 3, pool_buffers) {
    options.batch_size = batch_size;
    options.resize_w = 32;
    options.resize_h = 32;
    reader = std::make_unique<FpgaReader>(&device, &bounded, &pool, options);
  }

  Dataset dataset;
  DiskDataCollector collector;
  BoundedCollector bounded;
  fpga::FpgaDevice device;
  HugePagePool pool;
  FpgaReaderOptions options;
  std::unique_ptr<FpgaReader> reader;
};

TEST(FpgaReaderTest, ProducesFullBatches) {
  Rig rig(/*dataset=*/16, /*batch=*/8, /*max_images=*/16);
  rig.reader->Start();
  int batches = 0, images = 0;
  while (batches < 2) {
    auto buffer = rig.pool.FullQueue().Pop();
    ASSERT_TRUE(buffer.has_value());
    ++batches;
    for (const BatchItem& item : (*buffer)->items) {
      EXPECT_TRUE(item.ok);
      EXPECT_EQ(item.width, 32);
      EXPECT_EQ(item.height, 32);
      EXPECT_EQ(item.channels, 3);
      ++images;
    }
    rig.pool.Recycle(*buffer);
  }
  EXPECT_EQ(images, 16);
  rig.reader->Stop();
  EXPECT_EQ(rig.reader->ImagesCompleted(), 16u);
  EXPECT_EQ(rig.reader->DecodeFailures(), 0u);
}

TEST(FpgaReaderTest, PartialFinalBatch) {
  Rig rig(/*dataset=*/10, /*batch=*/8, /*max_images=*/10);
  rig.reader->Start();
  // Batches complete in decode order, which may differ from submission
  // order; collect both and check the multiset of sizes.
  std::multiset<size_t> sizes;
  for (int i = 0; i < 2; ++i) {
    auto buffer = rig.pool.FullQueue().Pop();
    ASSERT_TRUE(buffer.has_value());
    sizes.insert((*buffer)->items.size());
    rig.pool.Recycle(*buffer);
  }
  EXPECT_EQ(sizes, (std::multiset<size_t>{2u, 8u}));  // shrunk, not padded
  rig.reader->Stop();
  EXPECT_EQ(rig.reader->BatchesProduced(), 2u);
}

TEST(FpgaReaderTest, ItemOffsetsAreSlotAligned) {
  Rig rig(/*dataset=*/8, /*batch=*/4, /*max_images=*/8);
  rig.reader->Start();
  auto buffer = rig.pool.FullQueue().Pop();
  ASSERT_TRUE(buffer.has_value());
  const size_t stride = rig.options.SlotStride();
  for (size_t i = 0; i < (*buffer)->items.size(); ++i) {
    EXPECT_EQ((*buffer)->items[i].offset, i * stride);
  }
  rig.pool.Recycle(*buffer);
  rig.reader->Stop();
}

TEST(FpgaReaderTest, PixelsLandInsideTheRightSlot) {
  Rig rig(/*dataset=*/4, /*batch=*/4, /*max_images=*/4);
  rig.reader->Start();
  auto buffer = rig.pool.FullQueue().Pop();
  ASSERT_TRUE(buffer.has_value());
  // Slots hold different images => different content hashes.
  const size_t stride = rig.options.SlotStride();
  uint64_t h0 = Fnv1a64(ByteSpan((*buffer)->data, stride));
  uint64_t h1 = Fnv1a64(ByteSpan((*buffer)->data + stride, stride));
  EXPECT_NE(h0, h1);
  rig.pool.Recycle(*buffer);
  rig.reader->Stop();
}

TEST(FpgaReaderTest, ManyBatchesThroughSmallPool) {
  // Pool pressure: 2 buffers, 8 batches — recycling must keep it flowing.
  Rig rig(/*dataset=*/16, /*batch=*/4, /*max_images=*/32, /*pool_buffers=*/2);
  rig.reader->Start();
  int batches = 0;
  while (batches < 8) {
    auto buffer = rig.pool.FullQueue().Pop();
    ASSERT_TRUE(buffer.has_value());
    ++batches;
    rig.pool.Recycle(*buffer);
  }
  rig.reader->Stop();
  EXPECT_EQ(rig.reader->ImagesCompleted(), 32u);
}

TEST(FpgaReaderTest, NetworkPayloadsStayAliveUntilDecodeCompletes) {
  // Regression: the NIC receive queue recycles its buffers, so the reader
  // must pin each network payload until the FPGA finishes with it. Verify
  // the decoded pixels match a synchronous decode of the same bytes.
  Dataset ds = SmallDataset(8);
  BoundedQueue<NetworkImage> rx(16);
  std::vector<Bytes> sent;
  for (size_t i = 0; i < 8; ++i) {
    auto bytes = ds.store->Read(ds.manifest.At(i));
    ASSERT_TRUE(bytes.ok());
    NetworkImage img;
    img.payload.assign(bytes.value().begin(), bytes.value().end());
    img.request_id = i;
    sent.push_back(img.payload);
    ASSERT_TRUE(rx.Push(std::move(img)).ok());
  }
  rx.Close();

  NetDataCollector collector(&rx);
  fpga::FpgaDevice device;
  HugePagePool pool(8 * 32 * 32 * 3, 4);
  FpgaReaderOptions options;
  options.batch_size = 8;
  options.resize_w = 32;
  options.resize_h = 32;
  FpgaReader reader(&device, &collector, &pool, options);
  reader.Start();

  auto buffer = pool.FullQueue().Pop();
  ASSERT_TRUE(buffer.has_value());
  ASSERT_EQ((*buffer)->items.size(), 8u);
  for (const BatchItem& item : (*buffer)->items) {
    ASSERT_TRUE(item.ok) << "cookie " << item.cookie;
    // Reference: synchronous decode + resize of the exact sent bytes.
    auto ref = jpeg::Decode(sent[item.cookie]);
    ASSERT_TRUE(ref.ok());
    auto resized = Resize(ref.value(), 32, 32, ResizeFilter::kArea);
    ASSERT_TRUE(resized.ok());
    EXPECT_EQ(0, std::memcmp((*buffer)->data + item.offset,
                             resized.value().Data(),
                             resized.value().SizeBytes()))
        << "cookie " << item.cookie;
  }
  pool.Recycle(*buffer);
  reader.Stop();
}

TEST(FpgaReaderTest, StopWithoutStartIsSafe) {
  Rig rig(4, 4, 4);
  rig.reader->Stop();
  SUCCEED();
}

TEST(FpgaReaderTest, FinishedFlagAfterSourceDrains) {
  Rig rig(/*dataset=*/8, /*batch=*/4, /*max_images=*/8);
  rig.reader->Start();
  for (int i = 0; i < 2; ++i) {
    auto buffer = rig.pool.FullQueue().Pop();
    ASSERT_TRUE(buffer.has_value());
    rig.pool.Recycle(*buffer);
  }
  // Source exhausted: the reader loop must terminate on its own.
  for (int spin = 0; spin < 200 && !rig.reader->Finished(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(rig.reader->Finished());
  rig.reader->Stop();
}

}  // namespace
}  // namespace dlb
