#include "hostbridge/dispatcher.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

namespace dlb {
namespace {

/// Fill a pool buffer as if a decoder produced `n` items of `stride` bytes.
void FillBuffer(BatchBuffer* buffer, size_t n, size_t stride, uint8_t seed) {
  buffer->items.clear();
  for (size_t i = 0; i < n; ++i) {
    BatchItem item;
    item.offset = static_cast<uint32_t>(i * stride);
    item.bytes = static_cast<uint32_t>(stride);
    item.width = 4;
    item.height = 4;
    item.channels = 3;
    item.label = static_cast<int32_t>(i);
    item.ok = true;
    std::memset(buffer->data + item.offset, seed + static_cast<int>(i),
                stride);
    buffer->items.push_back(item);
  }
}

TEST(DispatcherTest, MovesBatchToEngineAndRecyclesHostBuffer) {
  HugePagePool pool(48 * 4, 2);
  Dispatcher dispatcher(&pool);
  const int engine = dispatcher.RegisterEngine();
  dispatcher.Start();

  auto buffer = pool.FreeQueue().TryPop();
  ASSERT_TRUE(buffer.has_value());
  FillBuffer(*buffer, 4, 48, 10);
  ASSERT_TRUE(pool.FullQueue().Push(*buffer).ok());

  auto batch = dispatcher.Engine(engine)->full_q.Pop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ((*batch)->items.size(), 4u);
  EXPECT_EQ((*batch)->mem[0], 10);
  EXPECT_EQ((*batch)->mem[48], 11);

  // The host buffer returned to the free queue.
  for (int spin = 0; spin < 100 && pool.FreeQueue().Size() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.FreeQueue().Size(), 2u);
  (void)dispatcher.Engine(engine)->free_q.TryPush(*batch);
  dispatcher.Stop();
}

TEST(DispatcherTest, RoundRobinAcrossEngines) {
  HugePagePool pool(16, 4);
  Dispatcher dispatcher(&pool);
  const int e0 = dispatcher.RegisterEngine();
  const int e1 = dispatcher.RegisterEngine();
  dispatcher.Start();

  for (int i = 0; i < 4; ++i) {
    auto buffer = pool.FreeQueue().Pop();
    ASSERT_TRUE(buffer.has_value());
    FillBuffer(*buffer, 1, 16, static_cast<uint8_t>(i));
    ASSERT_TRUE(pool.FullQueue().Push(*buffer).ok());
    // Engines consume as batches arrive (alternating).
    TransQueues* q = dispatcher.Engine(i % 2 == 0 ? e0 : e1);
    auto batch = q->full_q.Pop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ((*batch)->mem[0], i);
    (void)q->free_q.TryPush(*batch);
  }
  EXPECT_EQ(dispatcher.BatchesDispatched(e0), 2u);
  EXPECT_EQ(dispatcher.BatchesDispatched(e1), 2u);
  dispatcher.Stop();
}

TEST(DispatcherTest, PerItemCopiesSkipFailedItems) {
  HugePagePool pool(32 * 2, 1);
  DispatcherOptions opts;
  opts.per_item_copies = true;
  Dispatcher dispatcher(&pool, opts);
  const int engine = dispatcher.RegisterEngine();
  dispatcher.Start();

  auto buffer = pool.FreeQueue().TryPop();
  ASSERT_TRUE(buffer.has_value());
  FillBuffer(*buffer, 2, 32, 50);
  (*buffer)->items[1].ok = false;  // decode failure: not copied
  ASSERT_TRUE(pool.FullQueue().Push(*buffer).ok());

  auto batch = dispatcher.Engine(engine)->full_q.Pop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ((*batch)->mem[0], 50);
  EXPECT_EQ((*batch)->mem[32], 0);  // untouched device memory
  (void)dispatcher.Engine(engine)->free_q.TryPush(*batch);
  dispatcher.Stop();
}

TEST(DispatcherTest, SequenceNumbersAreMonotonic) {
  HugePagePool pool(16, 2);
  Dispatcher dispatcher(&pool);
  const int engine = dispatcher.RegisterEngine();
  dispatcher.Start();
  uint64_t last_seq = 0;
  for (int i = 0; i < 6; ++i) {
    auto buffer = pool.FreeQueue().Pop();
    ASSERT_TRUE(buffer.has_value());
    FillBuffer(*buffer, 1, 16, 0);
    ASSERT_TRUE(pool.FullQueue().Push(*buffer).ok());
    auto batch = dispatcher.Engine(engine)->full_q.Pop();
    ASSERT_TRUE(batch.has_value());
    if (i > 0) {
      EXPECT_EQ((*batch)->seq, last_seq + 1);
    }
    last_seq = (*batch)->seq;
    (void)dispatcher.Engine(engine)->free_q.TryPush(*batch);
  }
  dispatcher.Stop();
}

TEST(DispatcherTest, StopIsIdempotentAndUnblocks) {
  HugePagePool pool(16, 1);
  Dispatcher dispatcher(&pool);
  dispatcher.RegisterEngine();
  dispatcher.Start();
  dispatcher.Stop();
  dispatcher.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace dlb
