// Work-stealing decode dispatcher: skewed shards trigger steals, output
// stays byte-identical no matter which device ran a command, and a
// quarantined device fails its shard over to the survivors.
#include "hostbridge/steal_router.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "codec/jpeg_decoder.h"
#include "codec/jpeg_encoder.h"
#include "dataplane/synthetic_dataset.h"
#include "fpga/fpga_device.h"
#include "image/resize.h"
#include "telemetry/event_log.h"
#include "telemetry/flight_recorder.h"

namespace dlb {
namespace {

constexpr int kOutW = 32;
constexpr int kOutH = 32;
constexpr size_t kOutBytes = kOutW * kOutH * 3;

Bytes EncodeScene(int w, int h, uint64_t seed) {
  DatasetSpec spec = ImageNetLikeSpec(1, seed);
  spec.width = w;
  spec.height = h;
  spec.dim_jitter = 0;
  Image img = RenderScene(spec, 0, nullptr);
  auto encoded = jpeg::Encode(img);
  EXPECT_TRUE(encoded.ok());
  return encoded.value();
}

// The skew fixture: every image targets shard 0, and when `skewed` the
// blobs are ~8x the pixel count of the uniform ones, so a static shard
// assignment leaves device 1 idle while device 0 drowns.
struct Corpus {
  std::vector<Bytes> jpegs;
  std::vector<std::vector<uint8_t>> outs;      // device output, per image
  std::vector<std::vector<uint8_t>> expected;  // software reference
};

Corpus MakeCorpus(int n, bool skewed) {
  Corpus c;
  for (int i = 0; i < n; ++i) {
    const int w = skewed ? 128 : 48;
    const int h = skewed ? 96 : 36;
    c.jpegs.push_back(EncodeScene(w, h, 1000 + static_cast<uint64_t>(i)));
    c.outs.emplace_back(kOutBytes);
    auto sw = jpeg::Decode(c.jpegs.back());
    EXPECT_TRUE(sw.ok());
    auto resized = Resize(sw.value(), kOutW, kOutH, ResizeFilter::kArea);
    EXPECT_TRUE(resized.ok());
    c.expected.emplace_back(
        resized.value().Data(),
        resized.value().Data() + resized.value().SizeBytes());
  }
  return c;
}

fpga::FpgaCmd MakeCmd(Corpus& c, int i) {
  fpga::FpgaCmd cmd;
  cmd.cookie = static_cast<uint64_t>(i);
  cmd.jpeg = c.jpegs[static_cast<size_t>(i)];
  cmd.out = c.outs[static_cast<size_t>(i)].data();
  cmd.out_capacity = kOutBytes;
  cmd.resize_w = kOutW;
  cmd.resize_h = kOutH;
  return cmd;
}

// Small cmd FIFOs make backlog (and therefore stealing) deterministic: a
// single SubmitMany of N >> fifo_depth commands must leave a deep deque.
std::vector<std::unique_ptr<fpga::FpgaDevice>> MakeDevices(int n) {
  std::vector<std::unique_ptr<fpga::FpgaDevice>> devices;
  for (int d = 0; d < n; ++d) {
    fpga::FpgaDeviceOptions opts;
    opts.config.cmd_fifo_depth = 4;
    opts.device_index = d;
    devices.push_back(std::make_unique<fpga::FpgaDevice>(opts));
  }
  return devices;
}

std::vector<fpga::FpgaDevice*> Ptrs(
    const std::vector<std::unique_ptr<fpga::FpgaDevice>>& devices) {
  std::vector<fpga::FpgaDevice*> out;
  for (const auto& d : devices) out.push_back(d.get());
  return out;
}

// InFlight drops only after sink delivery, so quiescence may trail the
// last drained completion by one worker step.
bool AwaitQuiescent(const WorkStealingRouter& router) {
  for (int i = 0; i < 2000; ++i) {
    if (router.Quiescent()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// Submit the whole corpus on `shard`'s channel and drain until every
// completion came back. Returns false on any failed decode.
bool RunCorpus(WorkStealingRouter* router, int shard, Corpus& corpus) {
  std::vector<fpga::FpgaCmd> cmds;
  for (size_t i = 0; i < corpus.jpegs.size(); ++i) {
    cmds.push_back(MakeCmd(corpus, static_cast<int>(i)));
  }
  DecodeChannel* ch = router->Channel(shard);
  size_t done = 0;
  bool all_ok = true;
  while (!cmds.empty()) {
    (void)ch->SubmitMany(cmds);
    for (const auto& c : ch->DrainCompletions()) {
      ++done;
      all_ok = all_ok && c.status.ok();
    }
  }
  while (done < corpus.jpegs.size()) {
    auto completions = ch->WaitCompletionsFor(2000);
    if (completions.empty()) return false;  // stuck
    for (const auto& c : completions) {
      ++done;
      all_ok = all_ok && c.status.ok();
    }
  }
  return all_ok;
}

TEST(StealRouterTest, SkewedShardTriggersStealsAndMatchesReference) {
  auto devices = MakeDevices(2);
  StealRouterOptions opts;
  opts.steal_watermark = 2;
  WorkStealingRouter router(Ptrs(devices), opts);

  Corpus corpus = MakeCorpus(24, /*skewed=*/true);
  ASSERT_TRUE(RunCorpus(&router, /*shard=*/0, corpus));

  // All 24 commands targeted shard 0; with fifo_depth=4 and watermark=2
  // the first doorbell must leave a deque deep enough for device 1 to
  // steal from. Device 0 never steals (shard 1's deque stays empty).
  EXPECT_GT(router.Steals(), 0u);
  EXPECT_GT(router.Steals(1), 0u);
  EXPECT_GT(router.Stolen(0), 0u);
  EXPECT_EQ(router.Steals(0), 0u);
  EXPECT_GT(devices[1]->Completed(), 0u);
  // Min-share floor: steals stop at the watermark, so the owner decoded at
  // least that much of its own backlog.
  EXPECT_GE(devices[0]->Completed(),
            static_cast<uint64_t>(opts.steal_watermark));

  // Byte-identity: whichever device decoded an image, its output equals the
  // plain software decode + resize.
  for (size_t i = 0; i < corpus.outs.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(corpus.outs[i].data(), corpus.expected[i].data(),
                             kOutBytes))
        << "image " << i;
  }
  // Devices decrement InFlight *after* sink delivery, so quiescence can
  // trail the last drained completion by one worker step — poll briefly.
  EXPECT_TRUE(AwaitQuiescent(router));
  EXPECT_EQ(router.ShardDepth(0), 0u);
  EXPECT_EQ(router.ShardDepth(1), 0u);
}

TEST(StealRouterTest, StealOffIsByteIdenticalToStealOn) {
  Corpus on_corpus = MakeCorpus(16, /*skewed=*/true);
  Corpus off_corpus = MakeCorpus(16, /*skewed=*/true);
  {
    auto devices = MakeDevices(2);
    StealRouterOptions opts;
    opts.steal_watermark = 2;
    WorkStealingRouter router(Ptrs(devices), opts);
    ASSERT_TRUE(RunCorpus(&router, 0, on_corpus));
  }
  {
    auto devices = MakeDevices(2);
    StealRouterOptions opts;
    opts.steal_enabled = false;
    WorkStealingRouter router(Ptrs(devices), opts);
    ASSERT_TRUE(RunCorpus(&router, 0, off_corpus));
    // Static sharding: everything ran (slowly) on device 0.
    EXPECT_EQ(router.Steals(), 0u);
    EXPECT_EQ(devices[1]->Completed(), 0u);
  }
  for (size_t i = 0; i < on_corpus.outs.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(on_corpus.outs[i].data(),
                             off_corpus.outs[i].data(), kOutBytes))
        << "image " << i;
  }
}

TEST(StealRouterTest, RoundRobinAssignSplitsAcrossShards) {
  auto devices = MakeDevices(2);
  StealRouterOptions opts;
  opts.assign_policy = "rr";
  WorkStealingRouter router(Ptrs(devices), opts);
  Corpus corpus = MakeCorpus(16, /*skewed=*/false);
  ASSERT_TRUE(RunCorpus(&router, 0, corpus));
  // rr assignment puts half the stream on each shard no matter which
  // channel submitted; the watermark floor then guarantees both devices
  // decoded some of it.
  EXPECT_GE(devices[0]->Completed(),
            static_cast<uint64_t>(opts.steal_watermark));
  EXPECT_GE(devices[1]->Completed(),
            static_cast<uint64_t>(opts.steal_watermark));
  EXPECT_EQ(devices[0]->Completed() + devices[1]->Completed(), 16u);
}

TEST(StealRouterTest, QuarantineFailsOverByteIdenticallyAndTriggersFlight) {
  namespace fs = std::filesystem;
  telemetry::Telemetry telem;
  telem.EnableEvents(256, telemetry::EventLevel::kInfo);
  std::string dir = ::testing::TempDir() + "/dlb_steal_router_flight";
  fs::remove_all(dir);
  flight::FlightOptions fopts;
  fopts.dir = dir;
  fopts.profile_ms = 0;
  flight::FlightRecorder recorder(&telem, fopts);
  recorder.Start();
  telem.AttachFlightRecorder(&recorder);

  auto devices = MakeDevices(2);
  // Stealing disabled on purpose: failover must not depend on it.
  StealRouterOptions opts;
  opts.steal_enabled = false;
  WorkStealingRouter router(Ptrs(devices), opts);
  router.SetTelemetry(&telem);

  ASSERT_TRUE(router.QuarantineDevice(0));
  EXPECT_TRUE(router.IsQuarantined(0));
  EXPECT_EQ(router.DevicesQuarantined(), 1);
  // The last healthy device is unquarantinable: degraded beats dead.
  EXPECT_FALSE(router.QuarantineDevice(1));
  // Re-latching an already-dead device is a no-op success.
  EXPECT_TRUE(router.QuarantineDevice(0));

  Corpus corpus = MakeCorpus(8, /*skewed=*/false);
  ASSERT_TRUE(RunCorpus(&router, /*shard=*/0, corpus));

  // Shard 0's stream failed over entirely to device 1, byte-identically.
  EXPECT_EQ(devices[0]->Completed(), 0u);
  EXPECT_EQ(devices[1]->Completed(), 8u);
  for (size_t i = 0; i < corpus.outs.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(corpus.outs[i].data(), corpus.expected[i].data(),
                             kOutBytes))
        << "image " << i;
  }

  // The quarantine raised an event and a flight-recorder bundle.
  bool saw_event = false;
  for (const auto& e : telem.events()->Snapshot()) {
    if (e.type == telemetry::EventType::kUnitQuarantined && e.arg0 == 0 &&
        e.arg1 == 0xFFFF) {
      saw_event = true;
    }
  }
  EXPECT_TRUE(saw_event);
  recorder.Stop();  // drains the queued trigger
  EXPECT_EQ(recorder.TriggersSuppressed(), 0u);
  EXPECT_EQ(recorder.BundlesWritten(), 1u);
  auto bundles = recorder.Bundles();
  ASSERT_GE(bundles.size(), 1u);
  EXPECT_NE(bundles.back().name.find("quarantine"), std::string::npos);
  fs::remove_all(dir);
}

TEST(StealRouterTest, ShutdownClosesChannels) {
  auto devices = MakeDevices(2);
  WorkStealingRouter router(Ptrs(devices), StealRouterOptions{});
  Corpus corpus = MakeCorpus(1, false);
  router.Shutdown();
  EXPECT_TRUE(router.Channel(0)->IsClosed());
  fpga::FpgaCmd cmd = MakeCmd(corpus, 0);
  EXPECT_EQ(router.Channel(0)->Submit(cmd).code(), StatusCode::kClosed);
  std::vector<fpga::FpgaCmd> cmds;
  cmds.push_back(MakeCmd(corpus, 0));
  EXPECT_EQ(router.Channel(0)->SubmitMany(cmds), 0u);
}

TEST(StealRouterTest, CompletionsRouteToSubmittingShardWithCleanCookies) {
  auto devices = MakeDevices(2);
  StealRouterOptions opts;
  opts.steal_watermark = 1;
  WorkStealingRouter router(Ptrs(devices), opts);
  Corpus c0 = MakeCorpus(6, true);
  Corpus c1 = MakeCorpus(6, false);

  std::vector<fpga::FpgaCmd> cmds0, cmds1;
  for (int i = 0; i < 6; ++i) {
    cmds0.push_back(MakeCmd(c0, i));
    cmds1.push_back(MakeCmd(c1, i));
  }
  while (!cmds0.empty()) (void)router.Channel(0)->SubmitMany(cmds0);
  while (!cmds1.empty()) (void)router.Channel(1)->SubmitMany(cmds1);

  // Each shard sees exactly its own six cookies, with the shard tag
  // stripped, no matter which device executed the command.
  for (int shard = 0; shard < 2; ++shard) {
    std::vector<bool> seen(6, false);
    size_t done = 0;
    while (done < 6) {
      auto completions = router.Channel(shard)->WaitCompletionsFor(2000);
      ASSERT_FALSE(completions.empty()) << "shard " << shard << " stuck";
      for (const auto& comp : completions) {
        ASSERT_LT(comp.cookie, 6u);
        EXPECT_FALSE(seen[static_cast<size_t>(comp.cookie)]);
        seen[static_cast<size_t>(comp.cookie)] = true;
        ++done;
      }
    }
  }
  EXPECT_TRUE(AwaitQuiescent(router));
}

}  // namespace
}  // namespace dlb
