// The tooling JSON reader: full-grammar parsing, error positions, and the
// FlattenNumbers projection benchdiff gates on.
#include "common/json.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace dlb::json {
namespace {

TEST(JsonParseTest, ParsesScalarsAndStructure) {
  auto v = Parse(R"({
    "num": -12.5e1,
    "flag": true,
    "none": null,
    "name": "dlb",
    "arr": [1, 2, 3],
    "nested": {"inner": 7}
  })");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const ValuePtr root = v.value();
  ASSERT_TRUE(root->IsObject());
  EXPECT_DOUBLE_EQ(root->Get("num")->number, -125.0);
  EXPECT_TRUE(root->Get("flag")->boolean);
  EXPECT_EQ(root->Get("none")->kind(), Kind::kNull);
  EXPECT_EQ(root->Get("name")->str, "dlb");
  ASSERT_EQ(root->Get("arr")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(root->Get("arr")->array[1]->number, 2.0);
  EXPECT_DOUBLE_EQ(root->Get("nested")->Get("inner")->number, 7.0);
  // Insertion order preserved for stable reports.
  ASSERT_EQ(root->keys.size(), 6u);
  EXPECT_EQ(root->keys.front(), "num");
  EXPECT_EQ(root->keys.back(), "nested");
}

TEST(JsonParseTest, ParsesStringEscapes) {
  auto v = Parse(R"(["a\"b", "tab\there", "A\u00e9"])");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v.value()->array[0]->str, "a\"b");
  EXPECT_EQ(v.value()->array[1]->str, "tab\there");
  EXPECT_EQ(v.value()->array[2]->str, "A\xc3\xa9");  // \u escapes -> UTF-8
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("{\"a\": }").ok());
  EXPECT_FALSE(Parse("[1, 2,]").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  // Trailing junk after a valid document is an error, not silently ignored.
  EXPECT_FALSE(Parse("{} x").ok());
  // Errors carry a position for diagnostics.
  auto bad = Parse("[1, !]");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("offset"), std::string::npos);
}

TEST(JsonParseTest, RejectsPathologicalNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Parse(deep).ok());  // depth cap, not a stack overflow
}

TEST(JsonFlattenTest, DottedPathsForNumbersAndBools) {
  auto v = Parse(R"({
    "img_s": 100.5,
    "gate": {"pass": true, "note": "ok"},
    "runs": [10, 20],
    "skipped": null
  })");
  ASSERT_TRUE(v.ok());
  const std::map<std::string, double> flat = FlattenNumbers(v.value());
  EXPECT_DOUBLE_EQ(flat.at("img_s"), 100.5);
  EXPECT_DOUBLE_EQ(flat.at("gate.pass"), 1.0);  // booleans diff as 0/1
  EXPECT_DOUBLE_EQ(flat.at("runs.0"), 10.0);
  EXPECT_DOUBLE_EQ(flat.at("runs.1"), 20.0);
  // Strings and nulls are not metrics.
  EXPECT_EQ(flat.count("gate.note"), 0u);
  EXPECT_EQ(flat.count("skipped"), 0u);
  EXPECT_EQ(flat.size(), 4u);
}

}  // namespace
}  // namespace dlb::json
