// The performance-regression plane's diff engine: metric classification,
// noise-aware gating, pass-flag strictness, best-of-N merging, the markdown
// report, and loading BENCH_*.json sets from disk.
#include "common/benchdiff.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace dlb::benchdiff {
namespace {

namespace fs = std::filesystem;

TEST(ClassifyTest, MetricNameHeuristics) {
  EXPECT_EQ(Classify("gate.pass"), Direction::kPassFlag);
  EXPECT_EQ(Classify("pass"), Direction::kPassFlag);
  EXPECT_EQ(Classify("on_off_ratio"), Direction::kRatio);
  EXPECT_EQ(Classify("decode.speedup"), Direction::kRatio);
  EXPECT_EQ(Classify("fpga.utilization"), Direction::kRatio);
  EXPECT_EQ(Classify("cache.hit_rate"), Direction::kRatio);
  EXPECT_EQ(Classify("scaled.img_s"), Direction::kHigherBetter);
  EXPECT_EQ(Classify("items_rate_per_s"), Direction::kHigherBetter);
  EXPECT_EQ(Classify("decode.latency_ns"), Direction::kLowerBetter);
  EXPECT_EQ(Classify("p99_ms"), Direction::kLowerBetter);
  EXPECT_EQ(Classify("images"), Direction::kInfo);
  EXPECT_EQ(Classify("batch_size"), Direction::kInfo);
  // "pass" must be the leaf, not a substring elsewhere in the path.
  EXPECT_NE(Classify("passes.count"), Direction::kPassFlag);
}

BenchSet OneMetric(const std::string& metric, double value) {
  return {{"bench", {{metric, value}}}};
}

TEST(DiffTest, RatioRegressionGatesUnderDefaultGate) {
  const DiffReport r = Diff(OneMetric("on_off_ratio", 1.0),
                            OneMetric("on_off_ratio", 0.5));
  ASSERT_EQ(r.diffs.size(), 1u);
  EXPECT_EQ(r.diffs[0].verdict, Verdict::kRegressed);
  EXPECT_TRUE(r.diffs[0].gated);
  EXPECT_TRUE(r.HasRegressions());
}

TEST(DiffTest, WithinNoiseIsOk) {
  // -10% on a ratio is inside the 30% ratio threshold.
  const DiffReport r = Diff(OneMetric("on_off_ratio", 1.0),
                            OneMetric("on_off_ratio", 0.9));
  ASSERT_EQ(r.diffs.size(), 1u);
  EXPECT_EQ(r.diffs[0].verdict, Verdict::kOk);
  EXPECT_FALSE(r.HasRegressions());
}

TEST(DiffTest, ImprovementReportedNotGated) {
  const DiffReport r = Diff(OneMetric("decode.speedup", 1.0),
                            OneMetric("decode.speedup", 2.0));
  ASSERT_EQ(r.diffs.size(), 1u);
  EXPECT_EQ(r.diffs[0].verdict, Verdict::kImproved);
  EXPECT_EQ(r.improvements, 1);
  EXPECT_FALSE(r.HasRegressions());
}

TEST(DiffTest, PassFlagFlipIsStrict) {
  // true -> false regresses regardless of thresholds; false -> true
  // improves. No relative-noise allowance applies to booleans.
  const DiffReport broke = Diff(OneMetric("gate.pass", 1.0),
                                OneMetric("gate.pass", 0.0));
  ASSERT_EQ(broke.diffs.size(), 1u);
  EXPECT_EQ(broke.diffs[0].verdict, Verdict::kRegressed);
  EXPECT_TRUE(broke.HasRegressions());

  const DiffReport fixed = Diff(OneMetric("gate.pass", 0.0),
                                OneMetric("gate.pass", 1.0));
  EXPECT_EQ(fixed.diffs[0].verdict, Verdict::kImproved);
}

TEST(DiffTest, GateClassControlsAbsoluteMetrics) {
  // A 2x throughput drop: machine-dependent, so the cross-machine default
  // gate only reports it; --gate all turns it into a failure.
  const BenchSet base = OneMetric("scaled.img_s", 1000.0);
  const BenchSet cand = OneMetric("scaled.img_s", 400.0);

  const DiffReport ratio_gate = Diff(base, cand, {}, Gate::kRatioOnly);
  ASSERT_EQ(ratio_gate.diffs.size(), 1u);
  EXPECT_EQ(ratio_gate.diffs[0].verdict, Verdict::kRegressed);
  EXPECT_FALSE(ratio_gate.diffs[0].gated);
  EXPECT_FALSE(ratio_gate.HasRegressions());

  const DiffReport all_gate = Diff(base, cand, {}, Gate::kAll);
  EXPECT_TRUE(all_gate.diffs[0].gated);
  EXPECT_TRUE(all_gate.HasRegressions());
}

TEST(DiffTest, LatencyDirectionInverts) {
  // Latency going up is a regression; going down is an improvement.
  const DiffReport worse = Diff(OneMetric("p99_ms", 10.0),
                                OneMetric("p99_ms", 20.0), {}, Gate::kAll);
  EXPECT_EQ(worse.diffs[0].verdict, Verdict::kRegressed);
  const DiffReport better = Diff(OneMetric("p99_ms", 20.0),
                                 OneMetric("p99_ms", 10.0), {}, Gate::kAll);
  EXPECT_EQ(better.diffs[0].verdict, Verdict::kImproved);
}

TEST(DiffTest, MissingLabelAndMetricGateUnlessAllowed) {
  BenchSet base;
  base["gone"] = {{"on_off_ratio", 1.0}};
  base["bench"] = {{"on_off_ratio", 1.0}, {"extra.speedup", 2.0}};
  BenchSet cand;
  cand["bench"] = {{"on_off_ratio", 1.0}};

  const DiffReport strict = Diff(base, cand);
  EXPECT_TRUE(strict.HasRegressions());
  bool saw_label = false, saw_metric = false;
  for (const auto& d : strict.diffs) {
    if (d.label == "gone" && d.verdict == Verdict::kMissing) saw_label = true;
    if (d.metric == "extra.speedup" && d.verdict == Verdict::kMissing) {
      saw_metric = true;
    }
  }
  EXPECT_TRUE(saw_label);
  EXPECT_TRUE(saw_metric);

  Thresholds lenient;
  lenient.allow_missing = true;
  EXPECT_FALSE(Diff(base, cand, lenient).HasRegressions());
}

TEST(DiffTest, CandidateOnlyMetricsReportAsNew) {
  BenchSet base = OneMetric("on_off_ratio", 1.0);
  BenchSet cand = OneMetric("on_off_ratio", 1.0);
  cand["fresh"] = {{"img_s", 50.0}};
  const DiffReport r = Diff(base, cand);
  bool saw_new = false;
  for (const auto& d : r.diffs) {
    if (d.label == "fresh") {
      EXPECT_EQ(d.verdict, Verdict::kNew);
      EXPECT_FALSE(d.gated);
      saw_new = true;
    }
  }
  EXPECT_TRUE(saw_new);
  EXPECT_FALSE(r.HasRegressions());
}

TEST(MergeBestTest, KeepsMostFavourablePerMetric) {
  BenchSet run1;
  run1["bench"] = {{"img_s", 100.0}, {"p99_ms", 9.0},
                   {"on_off_ratio", 0.96}, {"images", 256.0}};
  BenchSet run2;
  run2["bench"] = {{"img_s", 120.0}, {"p99_ms", 12.0},
                   {"on_off_ratio", 0.91}, {"images", 512.0}};

  const BenchSet best = MergeBest({run1, run2});
  const auto& m = best.at("bench");
  EXPECT_DOUBLE_EQ(m.at("img_s"), 120.0);         // max: higher better
  EXPECT_DOUBLE_EQ(m.at("p99_ms"), 9.0);          // min: lower better
  EXPECT_DOUBLE_EQ(m.at("on_off_ratio"), 0.96);   // max: ratio
  EXPECT_DOUBLE_EQ(m.at("images"), 256.0);        // first seen: info
}

TEST(MarkdownTest, SummaryLineAndGatedRows) {
  BenchSet base = OneMetric("on_off_ratio", 1.0);
  base["bench"]["images"] = 256.0;
  const DiffReport bad = Diff(base, OneMetric("on_off_ratio", 0.4));
  const std::string md = bad.Markdown();
  EXPECT_NE(md.find("on_off_ratio"), std::string::npos) << md;
  EXPECT_NE(md.find("REGRESSED"), std::string::npos) << md;
  EXPECT_NE(md.find("(gated)"), std::string::npos) << md;
  EXPECT_NE(md.find("|"), std::string::npos) << md;  // it renders a table

  const DiffReport ok = Diff(base, base);
  const std::string clean = ok.Markdown();
  // Unchanged info metrics don't clutter the table.
  EXPECT_EQ(clean.find("images"), std::string::npos) << clean;
}

TEST(LoadDirTest, ReadsBenchFilesAndSkipsManifest) {
  const fs::path dir =
      fs::temp_directory_path() / "dlb_benchdiff_test_load";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir / "BENCH_alpha.json")
      << "{\"img_s\": 10.0, \"gate\": {\"pass\": true}}";
  std::ofstream(dir / "BENCH_all.json") << "{\"alpha\": {\"img_s\": 10.0}}";
  std::ofstream(dir / "notes.txt") << "ignored";

  auto set = LoadDir(dir.string());
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set.value().size(), 1u);  // manifest + stray file skipped
  const auto& alpha = set.value().at("alpha");
  EXPECT_DOUBLE_EQ(alpha.at("img_s"), 10.0);
  EXPECT_DOUBLE_EQ(alpha.at("gate.pass"), 1.0);

  // A corrupt file fails the load and names the culprit.
  std::ofstream(dir / "BENCH_broken.json") << "{not json";
  auto broken = LoadDir(dir.string());
  ASSERT_FALSE(broken.ok());
  EXPECT_NE(broken.status().ToString().find("BENCH_broken.json"),
            std::string::npos);

  fs::remove_all(dir);
  EXPECT_FALSE(LoadDir(dir.string()).ok());  // missing dir is an error
}

}  // namespace
}  // namespace dlb::benchdiff
