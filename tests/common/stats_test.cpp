#include "common/stats.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dlb {
namespace {

TEST(CounterTest, AccumulatesAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), 40000u);
}

TEST(HistogramTest, ExactForSmallValues) {
  Histogram h;
  for (uint64_t v = 0; v <= 32; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 33u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 32u);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), 32u);
}

TEST(HistogramTest, QuantilesWithinRelativeError) {
  Histogram h;
  for (uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  // 5 sub-bucket bits => worst-case relative error 1/32.
  const uint64_t p50 = h.Quantile(0.5);
  EXPECT_NEAR(static_cast<double>(p50), 50000.0, 50000.0 / 16.0);
  const uint64_t p99 = h.Quantile(0.99);
  EXPECT_NEAR(static_cast<double>(p99), 99000.0, 99000.0 / 16.0);
}

TEST(HistogramTest, MeanAndSum) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.Sum(), 60u);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, RecordNWeightsSamples) {
  Histogram h;
  h.RecordN(5, 100);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_EQ(h.Quantile(0.5), 5u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(1);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_EQ(a.Min(), 1u);
  EXPECT_GE(a.Max(), 1000000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, HugeValuesClampIntoTopBucket) {
  Histogram h;
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GT(h.Quantile(0.5), 1ull << 39);
}

TEST(RunningStatTest, WelfordMatchesClosedForm) {
  RunningStat rs;
  for (int i = 1; i <= 5; ++i) rs.Add(i);
  EXPECT_DOUBLE_EQ(rs.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.Variance(), 2.5);  // sample variance of 1..5
  EXPECT_EQ(rs.Min(), 1.0);
  EXPECT_EQ(rs.Max(), 5.0);
}

TEST(MetricRegistryTest, LazyCreationAndStablePointers) {
  MetricRegistry reg;
  Counter* c1 = reg.GetCounter("images");
  Counter* c2 = reg.GetCounter("images");
  EXPECT_EQ(c1, c2);
  c1->Add(3);
  EXPECT_NE(reg.Report().find("images 3"), std::string::npos);
}

TEST(MetricRegistryTest, ReportIncludesHistograms) {
  MetricRegistry reg;
  reg.GetHistogram("latency")->Record(100);
  const std::string report = reg.Report();
  EXPECT_NE(report.find("latency"), std::string::npos);
  EXPECT_NE(report.find("count=1"), std::string::npos);
}

TEST(GaugeTest, MaxTracksHighWatermark) {
  Gauge g;
  g.Set(5.0);
  g.Set(42.0);
  g.Set(7.0);
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);
  EXPECT_DOUBLE_EQ(g.Max(), 42.0);  // the spike survives the lower Set()
}

TEST(GaugeTest, MaxAndResetReturnsPeakAndReArms) {
  Gauge g;
  g.Set(10.0);
  g.Set(3.0);
  EXPECT_DOUBLE_EQ(g.MaxAndReset(), 10.0);
  // The new window starts from the current value, not zero: a steady
  // gauge keeps reporting its level as the watermark.
  EXPECT_DOUBLE_EQ(g.Max(), 3.0);
  g.Set(8.0);
  EXPECT_DOUBLE_EQ(g.MaxAndReset(), 8.0);
  EXPECT_DOUBLE_EQ(g.Max(), 8.0);
}

TEST(MetricRegistryTest, VisitCoversEveryMetricInNameOrder) {
  MetricRegistry reg;
  reg.GetCounter("b.counter")->Add(2);
  reg.GetCounter("a.counter")->Add(1);
  reg.GetGauge("depth")->Set(3.0);
  reg.GetHistogram("lat")->Record(50);

  struct Collector : MetricVisitor {
    std::vector<std::string> counters, gauges, histograms;
    void OnCounter(const std::string& name, const Counter& c) override {
      counters.push_back(name + "=" + std::to_string(c.Value()));
    }
    void OnGauge(const std::string& name, Gauge& g) override {
      gauges.push_back(name + "=" + std::to_string(int(g.Value())));
    }
    void OnHistogram(const std::string& name, const Histogram& h) override {
      histograms.push_back(name + "=" + std::to_string(h.Count()));
    }
  } v;
  reg.Visit(v);

  ASSERT_EQ(v.counters.size(), 2u);
  EXPECT_EQ(v.counters[0], "a.counter=1");  // name order
  EXPECT_EQ(v.counters[1], "b.counter=2");
  ASSERT_EQ(v.gauges.size(), 1u);
  EXPECT_EQ(v.gauges[0], "depth=3");
  ASSERT_EQ(v.histograms.size(), 1u);
  EXPECT_EQ(v.histograms[0], "lat=1");
}

}  // namespace
}  // namespace dlb
