// Shared HTTP server (common/http_server.h): the socket plane under both
// the monitor and the inference front door. Covers the socketless Dispatch
// seam, then real-socket behaviour the embedded servers depend on:
// keep-alive sequencing, pipelining, connection churn, slow-loris and
// truncated-request reaping (sweep decoupled from the poll period),
// body-size caps, async responders completing from foreign threads, and
// pending-connection slots freed the moment a departed client's FIN lands.
#include "common/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dlb::http {
namespace {

using namespace std::chrono_literals;

// Minimal blocking loopback client. Each instance is one TCP connection;
// Request() may be called repeatedly to exercise keep-alive.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() { Close(); }

  bool Connected() const { return fd_ >= 0; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool SendRaw(const std::string& bytes) {
    return fd_ >= 0 &&
           ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
               static_cast<ssize_t>(bytes.size());
  }

  // One full request/response round trip on the (kept-alive) connection.
  // Returns the status code, 0 on transport failure.
  int Request(const std::string& method, const std::string& target,
              const std::string& body = "", std::string* response_body = nullptr) {
    std::string req = method + " " + target + " HTTP/1.1\r\nHost: t\r\n";
    if (!body.empty() || method == "POST") {
      req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    req += "\r\n" + body;
    if (!SendRaw(req)) return 0;
    return ReadResponse(response_body);
  }

  // Read exactly one HTTP/1.1 response (Content-Length delimited). Bytes
  // beyond it — the tail of a pipelined pair arriving in one segment —
  // stay in buffer_ for the next call.
  int ReadResponse(std::string* response_body = nullptr) {
    char buf[4096];
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) return 0;
      buffer_.append(buf, static_cast<size_t>(n));
    }
    size_t content_length = 0;
    const size_t cl = buffer_.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      content_length = std::strtoull(buffer_.c_str() + cl + 16, nullptr, 10);
    }
    const size_t body_start = header_end + 4;
    while (buffer_.size() < body_start + content_length) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) return 0;
      buffer_.append(buf, static_cast<size_t>(n));
    }
    if (response_body != nullptr) {
      *response_body = buffer_.substr(body_start, content_length);
    }
    const size_t sp = buffer_.find(' ');
    const int status =
        sp == std::string::npos ? 0 : std::atoi(buffer_.c_str() + sp + 1);
    buffer_.erase(0, body_start + content_length);
    return status;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

HttpServer::Options FastOptions() {
  HttpServer::Options options;
  options.poll_ms = 10;
  options.sweep_interval_ms = 20;
  return options;
}

// ---------------------------------------------------------------------------
// Socketless Dispatch seam

TEST(HttpDispatchTest, RoutesSyncHandlersAndRejectsUnknown) {
  HttpServer server;
  server.AddHandler("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "pong"};
  });

  EXPECT_EQ(server.Dispatch({"GET", "/ping", "", ""}).body, "pong");
  EXPECT_EQ(server.Dispatch({"GET", "/nope", "", ""}).status, 404);
  // The 404 body lists registered endpoints — operators curl blind.
  EXPECT_NE(server.Dispatch({"GET", "/nope", "", ""}).body.find("/ping"),
            std::string::npos);
  EXPECT_EQ(server.Dispatch({"PUT", "/ping", "", ""}).status, 405);
}

TEST(HttpDispatchTest, AsyncHandlerRunsSynchronouslyInDispatch) {
  HttpServer server;
  server.AddAsyncHandler("/work", [](const HttpRequest& request,
                                     HttpServer::Responder responder) {
    responder.Send(HttpResponse{200, "text/plain", "did:" + request.body});
  });
  const HttpResponse response =
      server.Dispatch({"POST", "/work", "", "payload"});
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "did:payload");
}

TEST(HttpDispatchTest, QueryParamDecoding) {
  EXPECT_EQ(QueryParam("tenant=premium&deadline_ms=50", "tenant"), "premium");
  EXPECT_EQ(QueryParam("tenant=premium&deadline_ms=50", "deadline_ms"), "50");
  EXPECT_EQ(QueryParam("tenant=premium", "missing"), "");
  EXPECT_EQ(QueryParam("", "tenant"), "");
}

// ---------------------------------------------------------------------------
// Real-socket behaviour

TEST(HttpServerTest, KeepAliveServesSequentialRequests) {
  HttpServer server(FastOptions());
  server.AddHandler("/echo", [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", request.body};
  });
  ASSERT_TRUE(server.Start().ok());

  Client client(server.Port());
  ASSERT_TRUE(client.Connected());
  for (int i = 0; i < 5; ++i) {
    std::string body;
    EXPECT_EQ(client.Request("POST", "/echo", "req" + std::to_string(i),
                             &body),
              200);
    EXPECT_EQ(body, "req" + std::to_string(i));
  }
  // Five requests, one connection: keep-alive actually reused the socket.
  EXPECT_EQ(server.RequestsServed(), 5u);
  EXPECT_EQ(server.ConnectionsAccepted(), 1u);
  server.Stop();
}

TEST(HttpServerTest, PipelinedRequestsAllAnswered) {
  HttpServer server(FastOptions());
  server.AddHandler("/n", [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "q=" + request.query};
  });
  ASSERT_TRUE(server.Start().ok());

  Client client(server.Port());
  ASSERT_TRUE(client.Connected());
  // Both requests land in one segment; the second must be served from the
  // residual input buffer, not dropped.
  ASSERT_TRUE(client.SendRaw(
      "GET /n?i=1 HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /n?i=2 HTTP/1.1\r\nHost: t\r\n\r\n"));
  std::string body;
  EXPECT_EQ(client.ReadResponse(&body), 200);
  EXPECT_EQ(body, "q=i=1");
  EXPECT_EQ(client.ReadResponse(&body), 200);
  EXPECT_EQ(body, "q=i=2");
  server.Stop();
}

TEST(HttpServerTest, ConnectionChurn) {
  HttpServer server(FastOptions());
  server.AddHandler("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "pong"};
  });
  ASSERT_TRUE(server.Start().ok());

  // Many short-lived connections in a row: every slot must be recycled
  // promptly or the conn table wedges partway through.
  for (int i = 0; i < 100; ++i) {
    Client client(server.Port());
    ASSERT_TRUE(client.Connected()) << "connect " << i;
    EXPECT_EQ(client.Request("GET", "/ping"), 200) << "request " << i;
  }
  EXPECT_EQ(server.RequestsServed(), 100u);
  server.Stop();
}

TEST(HttpServerTest, ConcurrentKeepAliveClients) {
  HttpServer server(FastOptions());
  server.AddHandler("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "pong"};
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequests = 20;
  std::vector<std::jthread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server.Port());
      if (!client.Connected()) return;
      for (int i = 0; i < kRequests; ++i) {
        if (client.Request("GET", "/ping") == 200) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.clear();  // join
  EXPECT_EQ(ok.load(), kClients * kRequests);
  server.Stop();
}

TEST(HttpServerTest, SlowLorisReapedWhileGoodClientsServed) {
  HttpServer::Options options = FastOptions();
  options.request_timeout_ms = 100;
  HttpServer server(options);
  server.AddHandler("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "pong"};
  });
  ASSERT_TRUE(server.Start().ok());

  // The loris trickles a truncated request line and then stalls.
  Client loris(server.Port());
  ASSERT_TRUE(loris.Connected());
  ASSERT_TRUE(loris.SendRaw("GET /pi"));

  // Good clients are unaffected while the loris sits there.
  for (int i = 0; i < 3; ++i) {
    Client good(server.Port());
    ASSERT_TRUE(good.Connected());
    EXPECT_EQ(good.Request("GET", "/ping"), 200);
  }

  // The sweep (decoupled from poll_ms) drops the loris within the request
  // timeout plus one sweep interval.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (server.TimeoutsReaped() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GE(server.TimeoutsReaped(), 1u);
  server.Stop();
}

TEST(HttpServerTest, OversizedBodyRefusedWith413) {
  HttpServer::Options options = FastOptions();
  options.max_body_bytes = 1024;
  HttpServer server(options);
  server.AddHandler("/echo", [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", request.body};
  });
  ASSERT_TRUE(server.Start().ok());

  Client client(server.Port());
  ASSERT_TRUE(client.Connected());
  EXPECT_EQ(client.Request("POST", "/echo", std::string(2048, 'x')), 413);
  server.Stop();
}

TEST(HttpServerTest, AsyncResponderCompletesFromAnotherThread) {
  HttpServer server(FastOptions());
  std::vector<HttpServer::Responder> parked;
  std::mutex parked_mu;
  server.AddAsyncHandler("/defer", [&](const HttpRequest&,
                                       HttpServer::Responder responder) {
    std::scoped_lock lock(parked_mu);
    parked.push_back(std::move(responder));
  });
  ASSERT_TRUE(server.Start().ok());

  std::jthread completer([&] {
    // Wait until the request is parked, then answer from this thread.
    while (true) {
      std::this_thread::sleep_for(5ms);
      std::scoped_lock lock(parked_mu);
      if (!parked.empty()) {
        parked.front().Send(HttpResponse{200, "text/plain", "deferred"});
        // Second Send must be a harmless no-op (first wins).
        parked.front().Send(HttpResponse{500, "text/plain", "dupe"});
        return;
      }
    }
  });

  Client client(server.Port());
  ASSERT_TRUE(client.Connected());
  std::string body;
  EXPECT_EQ(client.Request("GET", "/defer", "", &body), 200);
  EXPECT_EQ(body, "deferred");
  completer.join();
  server.Stop();
}

TEST(HttpServerTest, DepartedPendingClientFreesSlotBeforeTimeout) {
  // Two conn slots, a pending timeout far beyond the test: if a client
  // that abandoned its in-flight async request did not free its slot on
  // FIN (the POLLRDHUP path), the third connection below would stall until
  // pending_timeout_ms.
  HttpServer::Options options = FastOptions();
  options.max_connections = 2;
  options.pending_timeout_ms = 60'000;
  HttpServer server(options);
  server.AddHandler("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "pong"};
  });
  server.AddAsyncHandler(
      "/never", [](const HttpRequest&, HttpServer::Responder) {
        // Intentionally parked forever; the responder is dropped, which is
        // legal — Send() on the server side never happens.
      });
  ASSERT_TRUE(server.Start().ok());

  // Fill both slots with pending requests, then walk away.
  {
    Client a(server.Port()), b(server.Port());
    ASSERT_TRUE(a.Connected());
    ASSERT_TRUE(b.Connected());
    ASSERT_TRUE(a.SendRaw("GET /never HTTP/1.1\r\nHost: t\r\n\r\n"));
    ASSERT_TRUE(b.SendRaw("GET /never HTTP/1.1\r\nHost: t\r\n\r\n"));
    std::this_thread::sleep_for(100ms);  // let both requests dispatch
  }  // both clients close: FIN on each pending connection

  // A fresh client must be accepted and served well before the pending
  // timeout would have released the slots.
  const auto start = std::chrono::steady_clock::now();
  Client fresh(server.Port());
  ASSERT_TRUE(fresh.Connected());
  EXPECT_EQ(fresh.Request("GET", "/ping"), 200);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
  server.Stop();
}

TEST(HttpServerTest, StopDropsPendingResponders) {
  HttpServer server(FastOptions());
  std::vector<HttpServer::Responder> parked;
  std::mutex parked_mu;
  server.AddAsyncHandler("/park", [&](const HttpRequest&,
                                      HttpServer::Responder responder) {
    std::scoped_lock lock(parked_mu);
    parked.push_back(std::move(responder));
  });
  ASSERT_TRUE(server.Start().ok());

  Client client(server.Port());
  ASSERT_TRUE(client.Connected());
  ASSERT_TRUE(client.SendRaw("GET /park HTTP/1.1\r\nHost: t\r\n\r\n"));
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < deadline) {
    std::scoped_lock lock(parked_mu);
    if (!parked.empty()) break;
    std::this_thread::sleep_for(5ms);
  }

  server.Stop();
  // Send after Stop() must be a safe no-op, not a crash or a write to a
  // dead server.
  std::scoped_lock lock(parked_mu);
  ASSERT_FALSE(parked.empty());
  parked.front().Send(HttpResponse{200, "text/plain", "too late"});
}

}  // namespace
}  // namespace dlb::http
