#include "common/config.h"

#include <gtest/gtest.h>

namespace dlb {
namespace {

TEST(ConfigTest, ParsesKeyValueArgs) {
  auto r = Config::FromArgs({"gpus=2", "backend=dlbooster", "rate=3.5"});
  ASSERT_TRUE(r.ok());
  const Config& c = r.value();
  EXPECT_EQ(c.GetInt("gpus", 0), 2);
  EXPECT_EQ(c.GetString("backend", ""), "dlbooster");
  EXPECT_DOUBLE_EQ(c.GetDouble("rate", 0.0), 3.5);
}

TEST(ConfigTest, RejectsMalformedToken) {
  EXPECT_FALSE(Config::FromArgs({"novalue"}).ok());
  EXPECT_FALSE(Config::FromArgs({"=orphan"}).ok());
}

TEST(ConfigTest, DefaultsWhenMissing) {
  Config c;
  EXPECT_EQ(c.GetInt("absent", 42), 42);
  EXPECT_EQ(c.GetString("absent", "dflt"), "dflt");
  EXPECT_TRUE(c.GetBool("absent", true));
}

TEST(ConfigTest, BoolAcceptsCommonSpellings) {
  Config c;
  c.Set("a", "1");
  c.Set("b", "true");
  c.Set("c", "yes");
  c.Set("d", "on");
  c.Set("e", "0");
  c.Set("f", "false");
  EXPECT_TRUE(c.GetBool("a", false));
  EXPECT_TRUE(c.GetBool("b", false));
  EXPECT_TRUE(c.GetBool("c", false));
  EXPECT_TRUE(c.GetBool("d", false));
  EXPECT_FALSE(c.GetBool("e", true));
  EXPECT_FALSE(c.GetBool("f", true));
}

TEST(ConfigTest, ValueMayContainEquals) {
  auto r = Config::FromArgs({"expr=a=b"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().GetString("expr", ""), "a=b");
}

TEST(ConfigTest, ToStringSortedAndRoundTrippable) {
  Config c;
  c.Set("zeta", "1");
  c.Set("alpha", "2");
  EXPECT_EQ(c.ToString(), "alpha=2 zeta=1");
}

}  // namespace
}  // namespace dlb
