#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace dlb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 95);
}

TEST(RngTest, UniformU64StaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64CoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) seen[rng.UniformU64(10)]++;
  for (int count : seen) {
    EXPECT_GT(count, 800);  // each residue ~1000 expected
    EXPECT_LT(count, 1200);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

}  // namespace
}  // namespace dlb
