#include "common/status.h"

#include <gtest/gtest.h>

namespace dlb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad width");
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(CorruptData("x").code(), StatusCode::kCorruptData);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Closed("x").code(), StatusCode::kClosed);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Fails() { return Internal("boom"); }
Status Propagates() {
  DLB_RETURN_IF_ERROR(Fails());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace dlb
