// The fault plane is only useful if it is deterministic: a seed must pin
// the whole fault schedule, and the spec grammar must reject bad input
// loudly (a chaos run with a silently-ignored rate tests nothing).
#include "common/fault.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace dlb::fault {
namespace {

TEST(FaultSpecTest, EmptySpecIsAllZero) {
  auto spec = ParseFaultSpec("");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec.value().Any());
  EXPECT_EQ(spec.value().seed, 42u);
}

TEST(FaultSpecTest, ParsesEveryKey) {
  auto spec = ParseFaultSpec(
      "corrupt_jpeg=0.05,fpga_unit_stall=0.01,dma_error=0.5,dma_drop=1,"
      "latency_spike=0.25,latency_spike_us=700,device_fail=0.02,seed=9");
  ASSERT_TRUE(spec.ok());
  const FaultSpec& s = spec.value();
  EXPECT_DOUBLE_EQ(s.corrupt_jpeg, 0.05);
  EXPECT_DOUBLE_EQ(s.fpga_unit_stall, 0.01);
  EXPECT_DOUBLE_EQ(s.dma_error, 0.5);
  EXPECT_DOUBLE_EQ(s.dma_drop, 1.0);
  EXPECT_DOUBLE_EQ(s.latency_spike, 0.25);
  EXPECT_EQ(s.latency_spike_us, 700u);
  EXPECT_DOUBLE_EQ(s.device_fail, 0.02);
  EXPECT_EQ(s.seed, 9u);
  EXPECT_TRUE(s.Any());
}

TEST(FaultSpecTest, SpikeMillisecondsAlias) {
  auto spec = ParseFaultSpec("latency_spike_ms=3");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().latency_spike_us, 3000u);
}

TEST(FaultSpecTest, EmptyEntriesAreSkipped) {
  auto spec = ParseFaultSpec(",corrupt_jpeg=0.1,,");
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(spec.value().corrupt_jpeg, 0.1);
}

TEST(FaultSpecTest, RejectsUnknownKey) {
  auto spec = ParseFaultSpec("jitterbug=0.5");
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultSpecTest, RejectsOutOfRangeRate) {
  EXPECT_EQ(ParseFaultSpec("dma_error=1.5").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("dma_error=-0.1").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultSpecTest, RejectsMalformedEntries) {
  EXPECT_EQ(ParseFaultSpec("corrupt_jpeg").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("corrupt_jpeg=abc").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("seed=12x").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultSpecTest, RateLookupMatchesFields) {
  auto spec = ParseFaultSpec("corrupt_jpeg=0.3,dma_drop=0.7");
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(spec.value().Rate(FaultKind::kCorruptJpeg), 0.3);
  EXPECT_DOUBLE_EQ(spec.value().Rate(FaultKind::kDmaDrop), 0.7);
  EXPECT_DOUBLE_EQ(spec.value().Rate(FaultKind::kDmaError), 0.0);
}

TEST(FaultSpecTest, FromEnvReadsDlbFaults) {
  ASSERT_EQ(setenv("DLB_FAULTS", "dma_error=0.125,seed=77", 1), 0);
  auto spec = FaultSpecFromEnv();
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(spec.value().dma_error, 0.125);
  EXPECT_EQ(spec.value().seed, 77u);
  ASSERT_EQ(unsetenv("DLB_FAULTS"), 0);
  auto unset = FaultSpecFromEnv();
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset.value().Any());
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  auto spec = ParseFaultSpec("corrupt_jpeg=0.2,dma_error=0.1,seed=123");
  ASSERT_TRUE(spec.ok());
  FaultInjector a(spec.value());
  FaultInjector b(spec.value());
  for (int i = 0; i < 2000; ++i) {
    const FaultKind kind =
        (i % 2 == 0) ? FaultKind::kCorruptJpeg : FaultKind::kDmaError;
    EXPECT_EQ(a.Fire(kind), b.Fire(kind)) << "draw " << i;
  }
  EXPECT_EQ(a.TotalInjected(), b.TotalInjected());
}

TEST(FaultInjectorTest, SameSeedSameCorruption) {
  auto spec = ParseFaultSpec("corrupt_jpeg=1,seed=5");
  ASSERT_TRUE(spec.ok());
  FaultInjector a(spec.value());
  FaultInjector b(spec.value());
  Bytes payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<uint8_t>(i));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Corrupt(payload), b.Corrupt(payload)) << "round " << i;
  }
}

TEST(FaultInjectorTest, DifferentSeedDifferentSchedule) {
  auto s1 = ParseFaultSpec("corrupt_jpeg=0.5,seed=1");
  auto s2 = ParseFaultSpec("corrupt_jpeg=0.5,seed=2");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  FaultInjector a(s1.value());
  FaultInjector b(s2.value());
  std::vector<bool> fa, fb;
  for (int i = 0; i < 256; ++i) {
    fa.push_back(a.Fire(FaultKind::kCorruptJpeg));
    fb.push_back(b.Fire(FaultKind::kCorruptJpeg));
  }
  EXPECT_NE(fa, fb);
}

TEST(FaultInjectorTest, UnarmedKindNeverFiresNorPerturbsTheStream) {
  // A zero-rate kind must not consume RNG state: otherwise adding probes
  // for kinds the spec never arms would shift the armed kinds' schedule.
  auto armed_only = ParseFaultSpec("dma_error=0.5,seed=10");
  auto with_probes = ParseFaultSpec("dma_error=0.5,seed=10");
  ASSERT_TRUE(armed_only.ok());
  ASSERT_TRUE(with_probes.ok());
  FaultInjector a(armed_only.value());
  FaultInjector b(with_probes.value());
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(b.Fire(FaultKind::kFpgaUnitStall));
    EXPECT_EQ(a.Fire(FaultKind::kDmaError), b.Fire(FaultKind::kDmaError));
  }
  EXPECT_EQ(b.Injected(FaultKind::kFpgaUnitStall), 0u);
}

TEST(FaultInjectorTest, FireRateIsRoughlyHonoured) {
  auto spec = ParseFaultSpec("latency_spike=0.1,seed=3");
  ASSERT_TRUE(spec.ok());
  FaultInjector inj(spec.value());
  int fired = 0;
  for (int i = 0; i < 10000; ++i) {
    if (inj.Fire(FaultKind::kLatencySpike)) ++fired;
  }
  EXPECT_GT(fired, 700);
  EXPECT_LT(fired, 1300);
  EXPECT_EQ(inj.Injected(FaultKind::kLatencySpike),
            static_cast<uint64_t>(fired));
  EXPECT_EQ(inj.TotalInjected(), static_cast<uint64_t>(fired));
}

TEST(FaultInjectorTest, CorruptAlwaysReturnsFreshBytes) {
  auto spec = ParseFaultSpec("corrupt_jpeg=1,seed=8");
  ASSERT_TRUE(spec.ok());
  FaultInjector inj(spec.value());
  Bytes payload(512, 0xAB);
  const Bytes original = payload;
  int mutated = 0;
  for (int i = 0; i < 100; ++i) {
    Bytes out = inj.Corrupt(payload);
    EXPECT_EQ(payload, original);  // input untouched
    EXPECT_LE(out.size(), payload.size());
    if (out != original) ++mutated;
  }
  // Every mode (flip, truncate, garbage-run) changes the bytes; only a
  // garbage run that happens to write 0xAB everywhere could no-op, which
  // is vanishingly rare across 100 rounds.
  EXPECT_GT(mutated, 90);
  EXPECT_TRUE(inj.Corrupt(ByteSpan{}).empty());
}

TEST(FaultInjectorTest, RegistryTwinsTrackLocalCounters) {
  auto spec = ParseFaultSpec("dma_drop=1,seed=4");
  ASSERT_TRUE(spec.ok());
  FaultInjector inj(spec.value());
  MetricRegistry registry;
  inj.AttachRegistry(&registry);
  for (int i = 0; i < 25; ++i) {
    EXPECT_TRUE(inj.Fire(FaultKind::kDmaDrop));
  }
  EXPECT_EQ(registry.GetCounter("faults.injected")->Value(), 25u);
  EXPECT_EQ(registry.GetCounter("faults.injected.dma_drop")->Value(), 25u);
  EXPECT_EQ(registry.GetCounter("faults.injected.corrupt_jpeg")->Value(), 0u);
}

TEST(FaultKindTest, NamesAreStable) {
  EXPECT_STREQ(FaultKindName(FaultKind::kCorruptJpeg), "corrupt_jpeg");
  EXPECT_STREQ(FaultKindName(FaultKind::kFpgaUnitStall), "fpga_unit_stall");
  EXPECT_STREQ(FaultKindName(FaultKind::kDmaError), "dma_error");
  EXPECT_STREQ(FaultKindName(FaultKind::kDmaDrop), "dma_drop");
  EXPECT_STREQ(FaultKindName(FaultKind::kLatencySpike), "latency_spike");
  EXPECT_STREQ(FaultKindName(FaultKind::kDeviceFail), "device_fail");
}

}  // namespace
}  // namespace dlb::fault
