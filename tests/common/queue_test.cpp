#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/spsc_ring.h"

namespace dlb {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i).ok());
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1).ok());
  EXPECT_TRUE(q.TryPush(2).ok());
  EXPECT_EQ(q.TryPush(3).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(q.Size(), 2u);
}

TEST(BoundedQueueTest, CloseWakesConsumersAfterDrain) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(1).ok());
  q.Close();
  // Remaining items still pop; then nullopt.
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_EQ(q.Push(2).code(), StatusCode::kClosed);
}

TEST(BoundedQueueTest, BlockedProducerWakesOnClose) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(0).ok());
  std::thread producer([&q] {
    Status s = q.Push(1);  // blocks: queue full
    EXPECT_EQ(s.code(), StatusCode::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  producer.join();
}

TEST(BoundedQueueTest, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 2500;
  BoundedQueue<int> q(64);
  std::atomic<long> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i).ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        received++;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  const int n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), static_cast<long>(n) * (n - 1) / 2);
}

TEST(BoundedQueueTest, PopForTimesOutOnEmpty) {
  BoundedQueue<int> q(4);
  const auto start = std::chrono::steady_clock::now();
  auto v = q.PopFor(std::chrono::milliseconds(20));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(v.has_value());
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
}

TEST(BoundedQueueTest, PopForReturnsImmediatelyWhenReady) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(9).ok());
  auto v = q.PopFor(std::chrono::milliseconds(1000));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
}

TEST(BoundedQueueTest, PopForWakesOnLatePush) {
  BoundedQueue<int> q(4);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(q.Push(5).ok());
  });
  auto v = q.PopFor(std::chrono::milliseconds(2000));
  producer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(BoundedQueueTest, PopForOnClosedEmptyQueue) {
  BoundedQueue<int> q(4);
  q.Close();
  EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(100)).has_value());
}

TEST(BoundedQueueTest, DrainAllEmptiesWithoutBlocking) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.Push(i).ok());
  auto drained = q.DrainAll();
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_TRUE(q.Empty());
}

TEST(BoundedQueueDeathTest, ZeroCapacityIsRejected) {
  EXPECT_DEATH(BoundedQueue<int>(0), "check failed");
}

TEST(BoundedQueueTest, TryPushManyAcceptsPrefixUpToCapacity) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(0).ok());
  std::vector<int> batch = {1, 2, 3, 4, 5};
  // One doorbell: three slots free, so exactly three items land, in order.
  EXPECT_EQ(q.TryPushMany(batch.begin(), batch.end()), 3u);
  EXPECT_EQ(q.Size(), 4u);
  for (int expect = 0; expect < 4; ++expect) {
    EXPECT_EQ(q.Pop().value(), expect);
  }
}

TEST(BoundedQueueTest, TryPushManyOnClosedQueueAcceptsNothing) {
  BoundedQueue<int> q(4);
  q.Close();
  std::vector<int> batch = {1, 2};
  EXPECT_EQ(q.TryPushMany(batch.begin(), batch.end()), 0u);
}

TEST(BoundedQueueTest, TryPushManyWakesBlockedConsumer) {
  BoundedQueue<int> q(8);
  std::thread consumer([&q] {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::vector<int> batch = {7, 8};
  EXPECT_EQ(q.TryPushMany(batch.begin(), batch.end()), 2u);
  consumer.join();
}

TEST(SpscRingTest, PushPopOrder) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_EQ(ring.TryPop().value(), 1);
  EXPECT_EQ(ring.TryPop().value(), 2);
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, FullRejectsPush) {
  SpscRing<int> ring(2);
  size_t pushed = 0;
  while (ring.TryPush(static_cast<int>(pushed))) ++pushed;
  EXPECT_EQ(pushed, ring.Capacity());
  EXPECT_FALSE(ring.TryPush(99));
}

TEST(SpscRingTest, CapacityIsSlotsMinusReservedSlot) {
  // One slot is sacrificed to distinguish full from empty.
  EXPECT_EQ(SpscRing<int>(8).Capacity(), 7u);
  EXPECT_EQ(SpscRing<int>(2).Capacity(), 1u);
}

TEST(SpscRingDeathTest, ZeroSlotsIsRejected) {
  EXPECT_DEATH(SpscRing<int>(0), "check failed");
}

TEST(SpscRingDeathTest, OneSlotIsRejected) {
  // A single slot cannot hold anything once the full/empty slot is
  // reserved, so it is rejected rather than silently rounded up.
  EXPECT_DEATH(SpscRing<int>(1), "check failed");
}

TEST(SpscRingDeathTest, NonPowerOfTwoSlotsIsRejected) {
  EXPECT_DEATH(SpscRing<int>(3), "check failed");
  EXPECT_DEATH(SpscRing<int>(100), "check failed");
}

TEST(SpscRingTest, ConcurrentStreamPreservesSequence) {
  SpscRing<int> ring(128);
  constexpr int kItems = 200000;
  std::thread producer([&ring] {
    for (int i = 0; i < kItems;) {
      if (ring.TryPush(i)) ++i;
    }
  });
  int expected = 0;
  while (expected < kItems) {
    if (auto v = ring.TryPop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
}

}  // namespace
}  // namespace dlb
