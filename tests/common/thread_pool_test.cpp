#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>

namespace dlb {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { count++; }).ok());
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done++;
    }).ok());
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, SubmitWithResultReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.SubmitWithResult([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_EQ(pool.Submit([] {}).code(), StatusCode::kClosed);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pool.Submit([&count] { count++; }).ok());
    }
  }  // destructor drains then joins
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.NumThreads(), 1u);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&ran] { ran++; }).ok());
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace dlb
