#include "common/topology.h"

#include <gtest/gtest.h>

namespace dlb::topo {
namespace {

TEST(TopologyTest, InterleaveRoundRobinsDevicesAcrossNodes) {
  auto plan = PlanPlacement(4, 2, "interleave");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().node_of_device, (std::vector<int>{0, 1, 0, 1}));
  EXPECT_EQ(plan.value().DevicesOn(0), 2);
  EXPECT_EQ(plan.value().DevicesOn(1), 2);
}

TEST(TopologyTest, PackFillsNodeZeroFirst) {
  auto plan = PlanPlacement(4, 2, "pack");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().node_of_device, (std::vector<int>{0, 0, 1, 1}));
}

TEST(TopologyTest, PackSpreadsRemainderOverEarlierNodes) {
  auto plan = PlanPlacement(5, 2, "pack");
  ASSERT_TRUE(plan.ok());
  // 5 devices over 2 nodes: node 0 takes the extra device.
  EXPECT_EQ(plan.value().node_of_device, (std::vector<int>{0, 0, 0, 1, 1}));
}

TEST(TopologyTest, MoreNodesThanDevicesLeavesNodesIdle) {
  auto plan = PlanPlacement(2, 4, "interleave");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().node_of_device, (std::vector<int>{0, 1}));
}

TEST(TopologyTest, SingleNodeDegeneratesToNodeZero) {
  for (const char* policy : {"interleave", "pack"}) {
    auto plan = PlanPlacement(3, 1, policy);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan.value().node_of_device, (std::vector<int>{0, 0, 0}));
  }
}

TEST(TopologyTest, RejectsBadArguments) {
  EXPECT_EQ(PlanPlacement(0, 1, "interleave").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PlanPlacement(1, 0, "interleave").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PlanPlacement(1, 1, "hilbert").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TopologyTest, ToStringNamesEveryDevice) {
  auto plan = PlanPlacement(2, 2, "interleave");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().ToString(), "interleave(2 nodes): dev0:n0 dev1:n1");
}

TEST(TopologyTest, NodeOfOutOfRangeDeviceIsNodeZero) {
  auto plan = PlanPlacement(2, 2, "interleave");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().NodeOf(7), 0);
}

}  // namespace
}  // namespace dlb::topo
