#include <gtest/gtest.h>

#include "dataplane/disk_model.h"
#include "dataplane/nic_model.h"

namespace dlb {
namespace {

TEST(DiskModelTest, TransferTimeMatchesBandwidth) {
  sim::Scheduler sched;
  DiskModelOptions opts;
  opts.read_bandwidth = 1e9;  // 1 GB/s
  opts.read_iops = 1e9;       // negligible per-op overhead
  opts.channels = 1;
  DiskModel disk(&sched, opts);
  sim::SimTime done = 0;
  disk.Read(500 * 1000 * 1000, [&] { done = sched.Now(); });
  sched.Run();
  EXPECT_NEAR(sim::ToSeconds(done), 0.5, 1e-3);
  EXPECT_EQ(disk.BytesRead(), 500000000u);
}

TEST(DiskModelTest, IopsBoundSmallReads) {
  sim::Scheduler sched;
  DiskModelOptions opts;
  opts.read_bandwidth = 1e12;  // transfer free
  opts.read_iops = 1000;       // 1ms per op
  opts.channels = 1;
  DiskModel disk(&sched, opts);
  int done = 0;
  for (int i = 0; i < 10; ++i) disk.Read(1, [&] { ++done; });
  sched.Run();
  EXPECT_EQ(done, 10);
  EXPECT_NEAR(sim::ToSeconds(sched.Now()), 0.010, 1e-4);
}

TEST(DiskModelTest, ChannelsOverlapRequests) {
  sim::Scheduler sched;
  DiskModelOptions opts;
  opts.read_bandwidth = 1e9;
  opts.read_iops = 1e9;
  opts.channels = 4;
  DiskModel disk(&sched, opts);
  int done = 0;
  for (int i = 0; i < 4; ++i) disk.Read(100 * 1000 * 1000, [&] { ++done; });
  sched.Run();
  EXPECT_EQ(done, 4);
  EXPECT_NEAR(sim::ToSeconds(sched.Now()), 0.1, 1e-3);  // parallel, not 0.4
}

TEST(NicModelTest, WireTimeAtLineRate) {
  sim::Scheduler sched;
  sim::CpuAccountant cpu(&sched);
  NicModelOptions opts;
  opts.bits_per_sec = 40e9;
  NicModel nic(&sched, &cpu, opts);
  sim::SimTime done = 0;
  nic.Receive(5ull * 1000 * 1000 * 1000 / 8, [&] { done = sched.Now(); });
  sched.Run();
  EXPECT_NEAR(sim::ToSeconds(done), 0.125, 1e-3);  // 5 Gb over 40 Gbps
}

TEST(NicModelTest, LinkSerializesTransfers) {
  sim::Scheduler sched;
  NicModelOptions opts;
  opts.bits_per_sec = 8e9;  // 1 GB/s
  NicModel nic(&sched, nullptr, opts);
  sim::SimTime done2 = 0;
  nic.Receive(1000 * 1000 * 1000, nullptr);
  nic.Receive(1000 * 1000 * 1000, [&] { done2 = sched.Now(); });
  sched.Run();
  EXPECT_NEAR(sim::ToSeconds(done2), 2.0, 1e-3);
}

TEST(NicModelTest, ChargesPerPacketCpu) {
  sim::Scheduler sched;
  sim::CpuAccountant cpu(&sched);
  NicModelOptions opts;
  opts.mtu = 1500;
  opts.per_packet_cpu_us = 1.0;
  NicModel nic(&sched, &cpu, opts);
  nic.Receive(15000, nullptr);  // 10 packets
  sched.Run();
  const auto& categories = cpu.CoreSecondsByCategory();
  auto it = categories.find("nic");
  ASSERT_NE(it, categories.end());
  EXPECT_NEAR(it->second, 10e-6, 1e-9);
}

}  // namespace
}  // namespace dlb
