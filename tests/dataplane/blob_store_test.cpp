#include "dataplane/blob_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace dlb {
namespace {

TEST(InMemoryBlobStoreTest, AppendAndRead) {
  InMemoryBlobStore store;
  const Bytes a = {1, 2, 3};
  const Bytes b = {4, 5, 6, 7};
  FileRecord ra = store.Append(a, "a", 0);
  FileRecord rb = store.Append(b, "b", 1);
  EXPECT_EQ(ra.offset, 0u);
  EXPECT_EQ(rb.offset, 3u);
  EXPECT_EQ(store.SizeBytes(), 7u);

  auto read_a = store.Read(ra);
  ASSERT_TRUE(read_a.ok());
  EXPECT_EQ(read_a.value()[2], 3);
  auto read_b = store.Read(rb);
  ASSERT_TRUE(read_b.ok());
  EXPECT_EQ(read_b.value().size(), 4u);
}

TEST(InMemoryBlobStoreTest, IdsAreSequential) {
  InMemoryBlobStore store;
  const Bytes one = {1};
  EXPECT_EQ(store.Append(one, "x", 0).id, 0u);
  const Bytes two = {2};
  EXPECT_EQ(store.Append(two, "y", 0).id, 1u);
}

TEST(InMemoryBlobStoreTest, OutOfBoundsReadRejected) {
  InMemoryBlobStore store;
  const Bytes ab = {1, 2};
  FileRecord rec = store.Append(ab, "a", 0);
  rec.size = 100;
  EXPECT_FALSE(store.Read(rec).ok());
}

TEST(PackedFileBlobStoreTest, PackOpenRoundTrip) {
  InMemoryBlobStore source;
  Manifest manifest;
  FileRecord a = source.Append(Bytes{1, 2, 3}, "a.jpg", 7);
  a.width = 10;
  a.height = 20;
  manifest.Add(a);
  FileRecord b = source.Append(Bytes{9, 8, 7, 6}, "b.jpg", -3);
  manifest.Add(b);

  const std::string path =
      (std::filesystem::temp_directory_path() / "dlb_pack.bin").string();
  ASSERT_TRUE(PackedFileBlobStore::Pack(manifest, source, path).ok());

  auto opened = PackedFileBlobStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const Manifest& m = opened.value().manifest;
  ASSERT_EQ(m.Size(), 2u);
  EXPECT_EQ(m.At(0).name, "a.jpg");
  EXPECT_EQ(m.At(0).label, 7);
  EXPECT_EQ(m.At(0).width, 10);
  EXPECT_EQ(m.At(1).label, -3);

  auto blob_a = opened.value().store->Read(m.At(0));
  ASSERT_TRUE(blob_a.ok());
  EXPECT_EQ(blob_a.value()[0], 1);
  auto blob_b = opened.value().store->Read(m.At(1));
  ASSERT_TRUE(blob_b.ok());
  EXPECT_EQ(blob_b.value().size(), 4u);
  EXPECT_EQ(blob_b.value()[3], 6);
  std::filesystem::remove(path);
}

TEST(PackedFileBlobStoreTest, OpenRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dlb_pack_bad.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage file contents here";
  }
  EXPECT_FALSE(PackedFileBlobStore::Open(path).ok());
  std::filesystem::remove(path);
  EXPECT_EQ(PackedFileBlobStore::Open("/nonexistent/x").status().code(),
            StatusCode::kNotFound);
}

TEST(PackedFileBlobStoreTest, TruncationsRejected) {
  InMemoryBlobStore source;
  Manifest manifest;
  manifest.Add(source.Append(Bytes(100, 42), "x.bin", 0));
  const std::string path =
      (std::filesystem::temp_directory_path() / "dlb_pack_trunc.bin").string();
  ASSERT_TRUE(PackedFileBlobStore::Pack(manifest, source, path).ok());
  // Truncate the arena.
  Bytes full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(full.data()),
              static_cast<std::streamsize>(full.size() - 50));
  }
  EXPECT_FALSE(PackedFileBlobStore::Open(path).ok());
  std::filesystem::remove(path);
}

TEST(PackedFileBlobStoreTest, FeedsThePipeline) {
  // The packed store is a drop-in BlobStore for the whole runtime stack.
  InMemoryBlobStore source;
  Manifest manifest;
  manifest.Add(source.Append(Bytes{0xFF, 0xD8, 0x01}, "fake.jpg", 1));
  const std::string path =
      (std::filesystem::temp_directory_path() / "dlb_pack_pipe.bin").string();
  ASSERT_TRUE(PackedFileBlobStore::Pack(manifest, source, path).ok());
  auto opened = PackedFileBlobStore::Open(path);
  ASSERT_TRUE(opened.ok());
  const BlobStore& as_interface = *opened.value().store;
  auto blob = as_interface.Read(opened.value().manifest.At(0));
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob.value()[1], 0xD8);
  std::filesystem::remove(path);
}

TEST(DirectoryBlobStoreTest, WriteReadRoundTrip) {
  const std::string root =
      std::filesystem::temp_directory_path() / "dlb_blob_test";
  std::filesystem::remove_all(root);
  DirectoryBlobStore store(root);
  const Bytes blob = {9, 8, 7, 6};
  auto rec = store.Write(blob, "sample.jpg", 3);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().label, 3);

  auto read = store.Read(rec.value());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), 4u);
  EXPECT_EQ(read.value()[0], 9);
  EXPECT_TRUE(std::filesystem::exists(root + "/sample.jpg"));
  std::filesystem::remove_all(root);
}

TEST(DirectoryBlobStoreTest, MissingFileIsNotFound) {
  DirectoryBlobStore store("/tmp/dlb_blob_missing");
  FileRecord rec;
  rec.name = "ghost.jpg";
  rec.size = 1;
  EXPECT_EQ(store.Read(rec).status().code(), StatusCode::kNotFound);
}

TEST(DirectoryBlobStoreTest, SizeMismatchIsCorrupt) {
  const std::string root =
      std::filesystem::temp_directory_path() / "dlb_blob_test2";
  std::filesystem::remove_all(root);
  DirectoryBlobStore store(root);
  const Bytes blob123 = {1, 2, 3};
  auto rec = store.Write(blob123, "f.bin", 0);
  ASSERT_TRUE(rec.ok());
  FileRecord bad = rec.value();
  bad.size = 2;
  EXPECT_EQ(store.Read(bad).status().code(), StatusCode::kCorruptData);
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace dlb
