#include "dataplane/batch_loader.h"

#include <gtest/gtest.h>

#include <set>

namespace dlb {
namespace {

Manifest MakeManifest(size_t n) {
  Manifest m;
  for (size_t i = 0; i < n; ++i) {
    FileRecord rec;
    rec.id = i;
    rec.name = std::to_string(i);
    m.Add(rec);
  }
  return m;
}

TEST(BatchLoaderTest, ExactDivision) {
  Manifest m = MakeManifest(12);
  BatchLoader loader(&m, 4, false, 1);
  EXPECT_EQ(loader.BatchesPerEpoch(), 3u);
  for (int b = 0; b < 3; ++b) {
    auto batch = loader.NextBatch();
    EXPECT_EQ(batch.size(), 4u);
  }
  EXPECT_EQ(loader.CurrentEpoch(), 0u);
  (void)loader.NextBatch();
  EXPECT_EQ(loader.CurrentEpoch(), 1u);
}

TEST(BatchLoaderTest, PartialFinalBatch) {
  Manifest m = MakeManifest(10);
  BatchLoader loader(&m, 4, false, 1);
  EXPECT_EQ(loader.NextBatch().size(), 4u);
  EXPECT_EQ(loader.NextBatch().size(), 4u);
  EXPECT_EQ(loader.NextBatch().size(), 2u);  // never spans epochs
  EXPECT_EQ(loader.NextBatch().size(), 4u);  // next epoch starts fresh
}

TEST(BatchLoaderTest, EpochCoversAllSamplesOnce) {
  Manifest m = MakeManifest(17);
  BatchLoader loader(&m, 5, true, 3);
  std::multiset<uint32_t> seen;
  while (loader.CurrentEpoch() == 0) {
    for (uint32_t idx : loader.NextBatch()) seen.insert(idx);
    if (seen.size() >= 17) break;
  }
  EXPECT_EQ(seen.size(), 17u);
  for (uint32_t i = 0; i < 17; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(BatchLoaderTest, ShuffledEpochsDiffer) {
  Manifest m = MakeManifest(64);
  BatchLoader loader(&m, 64, true, 5);
  auto epoch0 = loader.NextBatch();
  auto epoch1 = loader.NextBatch();
  EXPECT_NE(epoch0, epoch1);
}

TEST(BatchLoaderTest, EmptyManifest) {
  Manifest m;
  BatchLoader loader(&m, 4, false, 1);
  EXPECT_TRUE(loader.NextBatch().empty());
  EXPECT_EQ(loader.BatchesPerEpoch(), 0u);
}

TEST(BatchLoaderTest, ZeroBatchSizeClampedToOne) {
  Manifest m = MakeManifest(3);
  BatchLoader loader(&m, 0, false, 1);
  EXPECT_EQ(loader.BatchSize(), 1u);
  EXPECT_EQ(loader.NextBatch().size(), 1u);
}

}  // namespace
}  // namespace dlb
