#include "dataplane/synthetic_dataset.h"

#include <gtest/gtest.h>

#include <set>

#include "codec/jpeg_decoder.h"

namespace dlb {
namespace {

TEST(SyntheticDatasetTest, GeneratesRequestedCount) {
  DatasetSpec spec = ImageNetLikeSpec(16);
  spec.width = 64;
  spec.height = 48;  // keep the test fast
  auto ds = GenerateDataset(spec);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().manifest.Size(), 16u);
  EXPECT_GT(ds.value().store->SizeBytes(), 0u);
}

TEST(SyntheticDatasetTest, EveryBlobIsDecodableJpeg) {
  DatasetSpec spec = ImageNetLikeSpec(8);
  spec.width = 80;
  spec.height = 60;
  auto ds = GenerateDataset(spec);
  ASSERT_TRUE(ds.ok());
  for (const auto& rec : ds.value().manifest.Records()) {
    auto bytes = ds.value().store->Read(rec);
    ASSERT_TRUE(bytes.ok());
    auto img = jpeg::Decode(bytes.value());
    ASSERT_TRUE(img.ok()) << rec.name << ": " << img.status().ToString();
    EXPECT_EQ(img.value().Width(), rec.width);
    EXPECT_EQ(img.value().Height(), rec.height);
  }
}

TEST(SyntheticDatasetTest, DimensionJitterVariesSizes) {
  DatasetSpec spec = ImageNetLikeSpec(12);
  spec.width = 100;
  spec.height = 80;
  spec.dim_jitter = 0.3;
  auto ds = GenerateDataset(spec);
  ASSERT_TRUE(ds.ok());
  std::set<int> widths;
  for (const auto& rec : ds.value().manifest.Records()) {
    widths.insert(rec.width);
  }
  EXPECT_GT(widths.size(), 3u);
}

TEST(SyntheticDatasetTest, MnistSpecIsGrayscale28) {
  auto ds = GenerateDataset(MnistLikeSpec(4));
  ASSERT_TRUE(ds.ok());
  for (const auto& rec : ds.value().manifest.Records()) {
    auto bytes = ds.value().store->Read(rec);
    ASSERT_TRUE(bytes.ok());
    auto info = jpeg::PeekInfo(bytes.value());
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info.value().width, 28);
    EXPECT_EQ(info.value().height, 28);
    EXPECT_EQ(info.value().channels, 1);
  }
}

TEST(SyntheticDatasetTest, LabelsInRangeAndDiverse) {
  DatasetSpec spec = MnistLikeSpec(64);
  auto ds = GenerateDataset(spec);
  ASSERT_TRUE(ds.ok());
  std::set<int32_t> labels;
  for (const auto& rec : ds.value().manifest.Records()) {
    EXPECT_GE(rec.label, 0);
    EXPECT_LT(rec.label, spec.num_classes);
    labels.insert(rec.label);
  }
  EXPECT_GT(labels.size(), 5u);
}

TEST(SyntheticDatasetTest, DeterministicPerSeed) {
  DatasetSpec spec = MnistLikeSpec(6, /*seed=*/9);
  auto a = GenerateDataset(spec);
  auto b = GenerateDataset(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < 6; ++i) {
    const auto& ra = a.value().manifest.At(i);
    const auto& rb = b.value().manifest.At(i);
    EXPECT_EQ(ra.size, rb.size);
    EXPECT_EQ(ra.label, rb.label);
  }
}

TEST(SyntheticDatasetTest, RenderSceneEncodesLabel) {
  DatasetSpec spec = ImageNetLikeSpec(1);
  spec.width = 32;
  spec.height = 32;
  int label1 = -1, label2 = -1;
  (void)RenderScene(spec, 0, &label1);
  (void)RenderScene(spec, 0, &label2);
  EXPECT_EQ(label1, label2);  // deterministic
  EXPECT_GE(label1, 0);
}

TEST(SyntheticDatasetTest, EmptySpecRejected) {
  DatasetSpec spec;
  spec.num_images = 0;
  EXPECT_FALSE(GenerateDataset(spec).ok());
}

}  // namespace
}  // namespace dlb
