#include "dataplane/manifest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dlb {
namespace {

Manifest MakeManifest(size_t n) {
  Manifest m;
  for (size_t i = 0; i < n; ++i) {
    FileRecord rec;
    rec.id = i;
    rec.name = "img_" + std::to_string(i);
    rec.offset = i * 100;
    rec.size = 100;
    rec.label = static_cast<int32_t>(i % 7);
    m.Add(rec);
  }
  return m;
}

TEST(ManifestTest, SizeAndTotals) {
  Manifest m = MakeManifest(10);
  EXPECT_EQ(m.Size(), 10u);
  EXPECT_EQ(m.TotalBytes(), 1000u);
  EXPECT_DOUBLE_EQ(m.MeanBytes(), 100.0);
}

TEST(ManifestTest, EmptyManifest) {
  Manifest m;
  EXPECT_TRUE(m.Empty());
  EXPECT_EQ(m.TotalBytes(), 0u);
  EXPECT_DOUBLE_EQ(m.MeanBytes(), 0.0);
  EXPECT_TRUE(m.EpochOrder(0, 1, true).empty());
}

TEST(ManifestTest, EpochOrderIsPermutation) {
  Manifest m = MakeManifest(100);
  auto order = m.EpochOrder(0, 42, true);
  std::set<uint32_t> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(ManifestTest, ShuffleOffIsIdentity) {
  Manifest m = MakeManifest(20);
  auto order = m.EpochOrder(3, 42, false);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ManifestTest, ShuffleDeterministicPerSeedAndEpoch) {
  Manifest m = MakeManifest(50);
  EXPECT_EQ(m.EpochOrder(1, 7, true), m.EpochOrder(1, 7, true));
  EXPECT_NE(m.EpochOrder(1, 7, true), m.EpochOrder(2, 7, true));
  EXPECT_NE(m.EpochOrder(1, 7, true), m.EpochOrder(1, 8, true));
}

TEST(ManifestTest, ShuffleActuallyShuffles) {
  Manifest m = MakeManifest(100);
  auto order = m.EpochOrder(0, 5, true);
  size_t moved = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i) ++moved;
  }
  EXPECT_GT(moved, 80u);
}

}  // namespace
}  // namespace dlb
