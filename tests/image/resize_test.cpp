#include "image/resize.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/simd.h"

namespace dlb {
namespace {

Image UniformImage(int w, int h, int ch, uint8_t value) {
  Image img(w, h, ch);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < ch; ++c) img.Set(x, y, c, value);
    }
  }
  return img;
}

Image HorizontalGradient(int w, int h) {
  Image img(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.Set(x, y, 0, static_cast<uint8_t>(x * 255 / (w - 1)));
    }
  }
  return img;
}

class ResizeFilterTest : public ::testing::TestWithParam<ResizeFilter> {};

TEST_P(ResizeFilterTest, UniformImageStaysUniform) {
  Image src = UniformImage(37, 23, 3, 137);
  auto dst = Resize(src, 16, 16, GetParam());
  ASSERT_TRUE(dst.ok());
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      for (int c = 0; c < 3; ++c) EXPECT_EQ(dst.value().At(x, y, c), 137);
    }
  }
}

TEST_P(ResizeFilterTest, IdentityResizeIsExactCopy) {
  Rng rng(3);
  Image src(9, 7, 3);
  for (size_t i = 0; i < src.SizeBytes(); ++i) {
    src.Data()[i] = static_cast<uint8_t>(rng.UniformU64(256));
  }
  auto dst = Resize(src, 9, 7, GetParam());
  ASSERT_TRUE(dst.ok());
  EXPECT_TRUE(dst.value() == src);
}

TEST_P(ResizeFilterTest, GradientStaysMonotonic) {
  Image src = HorizontalGradient(64, 8);
  auto dst = Resize(src, 16, 8, GetParam());
  ASSERT_TRUE(dst.ok());
  for (int x = 1; x < 16; ++x) {
    EXPECT_GE(dst.value().At(x, 4, 0), dst.value().At(x - 1, 4, 0));
  }
}

TEST_P(ResizeFilterTest, UpscaleThenDownscalePreservesMean) {
  Image src = HorizontalGradient(16, 16);
  auto up = Resize(src, 64, 64, GetParam());
  ASSERT_TRUE(up.ok());
  auto down = Resize(up.value(), 16, 16, GetParam());
  ASSERT_TRUE(down.ok());
  auto diff = Image::MeanAbsDiff(src, down.value());
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 8.0);
}

TEST_P(ResizeFilterTest, RejectsBadTargets) {
  Image src = UniformImage(8, 8, 1, 0);
  EXPECT_FALSE(Resize(src, 0, 8, GetParam()).ok());
  EXPECT_FALSE(Resize(src, 8, -1, GetParam()).ok());
  EXPECT_FALSE(Resize(Image(), 8, 8, GetParam()).ok());
}

INSTANTIATE_TEST_SUITE_P(AllFilters, ResizeFilterTest,
                         ::testing::Values(ResizeFilter::kNearest,
                                           ResizeFilter::kBilinear,
                                           ResizeFilter::kArea),
                         [](const auto& info) {
                           switch (info.param) {
                             case ResizeFilter::kNearest: return "Nearest";
                             case ResizeFilter::kBilinear: return "Bilinear";
                             case ResizeFilter::kArea: return "Area";
                           }
                           return "Unknown";
                         });

TEST(ResizeTest, AreaDownscaleAveragesExactly) {
  // 2x2 -> 1x1 box average.
  Image src(2, 2, 1);
  src.Set(0, 0, 0, 10);
  src.Set(1, 0, 0, 20);
  src.Set(0, 1, 0, 30);
  src.Set(1, 1, 0, 40);
  auto dst = Resize(src, 1, 1, ResizeFilter::kArea);
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(dst.value().At(0, 0, 0), 25);
}

TEST(ResizeTest, ShorterSidePreservesAspect) {
  Image src = UniformImage(500, 375, 3, 9);
  auto dst = ResizeShorterSide(src, 256);
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(dst.value().Height(), 256);
  EXPECT_EQ(dst.value().Width(), 341);  // 500*256/375
}

TEST(ResizeCoverCropTest, ExactTargetShape) {
  Image src = UniformImage(500, 375, 3, 50);
  auto out = ResizeCoverCrop(src, 224, 224);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().Width(), 224);
  EXPECT_EQ(out.value().Height(), 224);
}

TEST(ResizeCoverCropTest, NoStretchDistortion) {
  // A centred vertical stripe must stay (roughly) centred and vertical
  // after cover-crop — a plain stretch of a wide image would fatten it.
  Image src(300, 100, 1);
  for (int y = 0; y < 100; ++y) {
    for (int x = 145; x < 155; ++x) src.Set(x, y, 0, 255);
  }
  auto out = ResizeCoverCrop(src, 50, 50, ResizeFilter::kArea);
  ASSERT_TRUE(out.ok());
  // Stripe occupied 10/300 of the width; after cover scale (x0.5) and the
  // centre crop it is ~5px of 50. A stretch would have made it ~1.7px.
  int bright_cols = 0;
  for (int x = 0; x < 50; ++x) {
    if (out.value().At(x, 25, 0) > 100) ++bright_cols;
  }
  EXPECT_GE(bright_cols, 3);
  EXPECT_LE(bright_cols, 8);
}

TEST(ResizeCoverCropTest, UpscaleCoversSmallSources) {
  Image src = UniformImage(10, 20, 3, 77);
  auto out = ResizeCoverCrop(src, 32, 32);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().Width(), 32);
  EXPECT_EQ(out.value().At(16, 16, 0), 77);
}

TEST(ResizeCoverCropTest, RejectsBadInput) {
  EXPECT_FALSE(ResizeCoverCrop(Image(), 10, 10).ok());
  Image src = UniformImage(4, 4, 1, 0);
  EXPECT_FALSE(ResizeCoverCrop(src, 0, 10).ok());
}

TEST(ResizeTest, ShorterSideTallImage) {
  Image src = UniformImage(100, 400, 1, 9);
  auto dst = ResizeShorterSide(src, 50);
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(dst.value().Width(), 50);
  EXPECT_EQ(dst.value().Height(), 200);
}

Image RandomImage(int w, int h, int ch, uint64_t seed) {
  Rng rng(seed);
  Image img(w, h, ch);
  for (size_t i = 0; i < img.SizeBytes(); ++i) {
    img.Data()[i] = static_cast<uint8_t>(rng.UniformU64(256));
  }
  return img;
}

// The row-pointer fast paths must be bit-exact against the seed per-pixel
// reference implementations — same fixed-point math, reorganised only.
class ResizeFastVsReferenceTest : public ::testing::TestWithParam<ResizeFilter> {
};

TEST_P(ResizeFastVsReferenceTest, ByteIdenticalToReference) {
  struct Shape {
    int sw, sh, ch, dw, dh;
  };
  const Shape shapes[] = {
      {500, 375, 3, 224, 224},  // the paper's hot combination
      {64, 64, 3, 17, 9},       // heavy downscale, odd target
      {17, 9, 1, 64, 64},       // upscale, grayscale
      {33, 57, 3, 33, 57},      // identity
      {40, 30, 4, 20, 15},      // 4-channel exercises the generic lane
      {3, 3, 1, 7, 5},          // tiny
      {256, 1, 3, 32, 1},       // single row
      {1, 256, 3, 1, 32},       // single column
  };
  int idx = 0;
  for (const Shape& s : shapes) {
    Image src = RandomImage(s.sw, s.sh, s.ch, 1000 + idx);
    auto fast = Resize(src, s.dw, s.dh, GetParam());
    auto ref = detail::ResizeReference(src, s.dw, s.dh, GetParam());
    ASSERT_TRUE(fast.ok()) << "shape " << idx;
    ASSERT_TRUE(ref.ok()) << "shape " << idx;
    EXPECT_TRUE(fast.value() == ref.value())
        << "fast/reference divergence at shape " << idx << " (" << s.sw << "x"
        << s.sh << "c" << s.ch << " -> " << s.dw << "x" << s.dh << ")";
    ++idx;
  }
}

TEST_P(ResizeFastVsReferenceTest, ReferenceKernelModeRoutesToReference) {
  Image src = RandomImage(61, 47, 3, 5);
  auto direct = detail::ResizeReference(src, 28, 28, GetParam());
  ASSERT_TRUE(direct.ok());
  simd::ScopedKernelMode mode(simd::KernelMode::kReference);
  auto via_mode = Resize(src, 28, 28, GetParam());
  ASSERT_TRUE(via_mode.ok());
  EXPECT_TRUE(via_mode.value() == direct.value());
}

INSTANTIATE_TEST_SUITE_P(AllFilters, ResizeFastVsReferenceTest,
                         ::testing::Values(ResizeFilter::kNearest,
                                           ResizeFilter::kBilinear,
                                           ResizeFilter::kArea),
                         [](const auto& info) {
                           switch (info.param) {
                             case ResizeFilter::kNearest: return "Nearest";
                             case ResizeFilter::kBilinear: return "Bilinear";
                             case ResizeFilter::kArea: return "Area";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace dlb
