#include "image/image.h"

#include <gtest/gtest.h>

namespace dlb {
namespace {

TEST(ImageTest, ConstructsZeroed) {
  Image img(4, 3, 3);
  EXPECT_EQ(img.Width(), 4);
  EXPECT_EQ(img.Height(), 3);
  EXPECT_EQ(img.Channels(), 3);
  EXPECT_EQ(img.SizeBytes(), 36u);
  for (size_t i = 0; i < img.SizeBytes(); ++i) EXPECT_EQ(img.Data()[i], 0);
}

TEST(ImageTest, SetAndGet) {
  Image img(2, 2, 3);
  img.Set(1, 0, 2, 200);
  EXPECT_EQ(img.At(1, 0, 2), 200);
  EXPECT_EQ(img.At(0, 0, 0), 0);
}

TEST(ImageTest, RowPointerArithmetic) {
  Image img(3, 2, 1);
  img.Set(0, 1, 0, 7);
  EXPECT_EQ(img.Row(1)[0], 7);
  EXPECT_EQ(img.Row(1) - img.Row(0), 3);
}

TEST(ImageTest, ContentHashDistinguishesShapes) {
  Image a(4, 2, 1), b(2, 4, 1);
  EXPECT_NE(a.ContentHash(), b.ContentHash());
}

TEST(ImageTest, ContentHashDistinguishesPixels) {
  Image a(4, 4, 1), b(4, 4, 1);
  b.Set(3, 3, 0, 1);
  EXPECT_NE(a.ContentHash(), b.ContentHash());
}

TEST(ImageTest, EqualityIsDeep) {
  Image a(2, 2, 1), b(2, 2, 1);
  EXPECT_TRUE(a == b);
  b.Set(0, 0, 0, 9);
  EXPECT_FALSE(a == b);
}

TEST(ImageTest, MeanAbsDiffExact) {
  Image a(2, 1, 1), b(2, 1, 1);
  a.Set(0, 0, 0, 10);
  a.Set(1, 0, 0, 20);
  b.Set(0, 0, 0, 14);
  b.Set(1, 0, 0, 14);
  auto d = Image::MeanAbsDiff(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d.value(), 5.0);
}

TEST(ImageTest, MeanAbsDiffShapeMismatchErrors) {
  Image a(2, 2, 1), b(2, 2, 3);
  EXPECT_FALSE(Image::MeanAbsDiff(a, b).ok());
}

}  // namespace
}  // namespace dlb
