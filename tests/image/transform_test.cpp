#include "image/transform.h"

#include <gtest/gtest.h>

#include <set>

namespace dlb {
namespace {

Image Numbered(int w, int h) {
  Image img(w, h, 1);
  uint8_t v = 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) img.Set(x, y, 0, v++);
  }
  return img;
}

TEST(CropTest, ExtractsExactRegion) {
  Image src = Numbered(4, 4);
  auto c = Crop(src, 1, 1, 2, 2);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().Width(), 2);
  EXPECT_EQ(c.value().At(0, 0, 0), src.At(1, 1, 0));
  EXPECT_EQ(c.value().At(1, 1, 0), src.At(2, 2, 0));
}

TEST(CropTest, RejectsOutOfBounds) {
  Image src = Numbered(4, 4);
  EXPECT_FALSE(Crop(src, 3, 3, 2, 2).ok());
  EXPECT_FALSE(Crop(src, -1, 0, 2, 2).ok());
  EXPECT_FALSE(Crop(src, 0, 0, 0, 2).ok());
}

TEST(CenterCropTest, CentersOddMargins) {
  Image src = Numbered(5, 5);
  auto c = CenterCrop(src, 3, 3);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().At(0, 0, 0), src.At(1, 1, 0));
}

TEST(CenterCropTest, FullSizeIsIdentity) {
  Image src = Numbered(4, 4);
  auto c = CenterCrop(src, 4, 4);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c.value() == src);
}

TEST(CenterCropTest, TooLargeRejected) {
  Image src = Numbered(4, 4);
  EXPECT_FALSE(CenterCrop(src, 5, 4).ok());
}

TEST(RandomCropTest, AlwaysInBoundsAndDeterministicPerSeed) {
  Image src = Numbered(10, 10);
  Rng rng1(42), rng2(42);
  for (int i = 0; i < 20; ++i) {
    auto a = RandomCrop(src, 4, 4, rng1);
    auto b = RandomCrop(src, 4, 4, rng2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(a.value() == b.value());
  }
}

TEST(RandomCropTest, CoversDifferentCorners) {
  Image src = Numbered(16, 16);
  Rng rng(1);
  std::set<uint8_t> first_pixels;
  for (int i = 0; i < 50; ++i) {
    auto c = RandomCrop(src, 4, 4, rng);
    ASSERT_TRUE(c.ok());
    first_pixels.insert(c.value().At(0, 0, 0));
  }
  EXPECT_GT(first_pixels.size(), 10u);  // many distinct origins
}

TEST(FlipTest, ReversesColumns) {
  Image src = Numbered(3, 2);
  Image f = FlipHorizontal(src);
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 3; ++x) {
      EXPECT_EQ(f.At(x, y, 0), src.At(2 - x, y, 0));
    }
  }
}

TEST(FlipTest, DoubleFlipIsIdentity) {
  Image src = Numbered(7, 5);
  EXPECT_TRUE(FlipHorizontal(FlipHorizontal(src)) == src);
}

TEST(FlipTest, MaybeFlipIsDeterministicPerSeed) {
  Image src = Numbered(6, 6);
  Rng a(9), b(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(MaybeFlipHorizontal(src, a) == MaybeFlipHorizontal(src, b));
  }
}

TEST(Rotate90Test, QuarterTurnMovesCorners) {
  Image src = Numbered(3, 2);  // 3 wide, 2 tall
  Image r = Rotate90(src, 1);
  EXPECT_EQ(r.Width(), 2);
  EXPECT_EQ(r.Height(), 3);
  // Top-left of source lands at top-right after a clockwise quarter turn.
  EXPECT_EQ(r.At(1, 0, 0), src.At(0, 0, 0));
  EXPECT_EQ(r.At(0, 0, 0), src.At(0, 1, 0));
}

TEST(Rotate90Test, FourTurnsIsIdentity) {
  Image src = Numbered(5, 3);
  Image r = src;
  for (int i = 0; i < 4; ++i) r = Rotate90(r, 1);
  EXPECT_TRUE(r == src);
}

TEST(Rotate90Test, TwoTurnsEqualsHalfTurn) {
  Image src = Numbered(4, 3);
  EXPECT_TRUE(Rotate90(Rotate90(src, 1), 1) == Rotate90(src, 2));
}

TEST(Rotate90Test, NegativeTurnsWrap) {
  Image src = Numbered(4, 3);
  EXPECT_TRUE(Rotate90(src, -1) == Rotate90(src, 3));
  EXPECT_TRUE(Rotate90(src, 0) == src);
  EXPECT_TRUE(Rotate90(src, 4) == src);
}

TEST(BrightnessTest, FactorOneIsIdentity) {
  Image src = Numbered(4, 4);
  EXPECT_TRUE(AdjustBrightness(src, 1.0) == src);
}

TEST(BrightnessTest, ScalesAndClamps) {
  Image src(2, 1, 1);
  src.Set(0, 0, 0, 100);
  src.Set(1, 0, 0, 200);
  Image doubled = AdjustBrightness(src, 2.0);
  EXPECT_EQ(doubled.At(0, 0, 0), 200);
  EXPECT_EQ(doubled.At(1, 0, 0), 255);  // clamped
  Image dimmed = AdjustBrightness(src, 0.5);
  EXPECT_EQ(dimmed.At(0, 0, 0), 50);
}

TEST(RandomAugmentTest, OutputShapeAndDeterminism) {
  Image src = Numbered(16, 16);
  Rng a(3), b(3);
  auto r1 = RandomAugment(src, 8, 8, 0.2, a);
  auto r2 = RandomAugment(src, 8, 8, 0.2, b);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().Width(), 8);
  EXPECT_EQ(r1.value().Height(), 8);
  EXPECT_TRUE(r1.value() == r2.value());
}

TEST(RandomAugmentTest, TooLargeCropRejected) {
  Image src = Numbered(4, 4);
  Rng rng(1);
  EXPECT_FALSE(RandomAugment(src, 8, 8, 0.0, rng).ok());
}

}  // namespace
}  // namespace dlb
