#include "image/tensor.h"

#include <gtest/gtest.h>

namespace dlb {
namespace {

TEST(TensorTest, LayoutIsNchw) {
  Tensor t;
  t.n = 2;
  t.c = 3;
  t.h = 4;
  t.w = 5;
  t.data.assign(t.NumElements(), 0.0f);
  t.At(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t.data[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
  EXPECT_EQ(t.NumElements(), 120u);
  EXPECT_EQ(t.SizeBytes(), 480u);
}

TEST(ImageToTensorTest, NormalizesPerChannel) {
  Image img(1, 1, 3);
  img.Set(0, 0, 0, 124);  // ~mean of channel 0
  img.Set(0, 0, 1, 116);
  img.Set(0, 0, 2, 104);
  Normalization norm;
  Tensor t;
  t.n = 1;
  t.c = 3;
  t.h = 1;
  t.w = 1;
  t.data.assign(3, 0.0f);
  ASSERT_TRUE(ImageToTensor(img, norm, &t, 0).ok());
  EXPECT_NEAR(t.At(0, 0, 0, 0), (124 - 123.675f) / 58.395f, 1e-5);
  EXPECT_NEAR(t.At(0, 1, 0, 0), (116 - 116.28f) / 57.12f, 1e-5);
  EXPECT_NEAR(t.At(0, 2, 0, 0), (104 - 103.53f) / 57.375f, 1e-5);
}

TEST(ImageToTensorTest, ShapeMismatchRejected) {
  Image img(2, 2, 3);
  Normalization norm;
  Tensor t;
  t.n = 1;
  t.c = 3;
  t.h = 4;
  t.w = 4;
  t.data.assign(t.NumElements(), 0.0f);
  EXPECT_FALSE(ImageToTensor(img, norm, &t, 0).ok());
}

TEST(ImageToTensorTest, BatchIndexBoundsChecked) {
  Image img(1, 1, 1);
  Normalization norm;
  Tensor t;
  t.n = 2;
  t.c = 1;
  t.h = 1;
  t.w = 1;
  t.data.assign(2, 0.0f);
  EXPECT_TRUE(ImageToTensor(img, norm, &t, 1).ok());
  EXPECT_FALSE(ImageToTensor(img, norm, &t, 2).ok());
  EXPECT_FALSE(ImageToTensor(img, norm, &t, -1).ok());
}

TEST(BatchToTensorTest, StacksImages) {
  std::vector<Image> batch;
  for (int i = 0; i < 4; ++i) {
    Image img(2, 2, 3);
    img.Set(0, 0, 0, static_cast<uint8_t>(i * 10));
    batch.push_back(std::move(img));
  }
  auto t = BatchToTensor(batch, Normalization{});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().n, 4);
  EXPECT_EQ(t.value().c, 3);
  // Channel-0 values differ per image.
  EXPECT_NE(t.value().At(0, 0, 0, 0), t.value().At(1, 0, 0, 0));
}

TEST(BatchToTensorTest, EmptyBatchRejected) {
  EXPECT_FALSE(BatchToTensor({}, Normalization{}).ok());
}

TEST(ImageToTensorTest, HwcToChwTransposesCorrectly) {
  Image img(2, 1, 3);
  // Pixel (0,0): RGB = (1,2,3); pixel (1,0): RGB = (4,5,6).
  img.Set(0, 0, 0, 1);
  img.Set(0, 0, 1, 2);
  img.Set(0, 0, 2, 3);
  img.Set(1, 0, 0, 4);
  img.Set(1, 0, 1, 5);
  img.Set(1, 0, 2, 6);
  Normalization norm;
  norm.mean = {0, 0, 0};
  norm.stddev = {1, 1, 1};
  Tensor t;
  t.n = 1;
  t.c = 3;
  t.h = 1;
  t.w = 2;
  t.data.assign(6, 0.0f);
  ASSERT_TRUE(ImageToTensor(img, norm, &t, 0).ok());
  EXPECT_EQ(t.At(0, 0, 0, 0), 1.0f);
  EXPECT_EQ(t.At(0, 0, 0, 1), 4.0f);
  EXPECT_EQ(t.At(0, 1, 0, 0), 2.0f);
  EXPECT_EQ(t.At(0, 2, 0, 1), 6.0f);
}

}  // namespace
}  // namespace dlb
