#include "codec/png.h"

#include <gtest/gtest.h>

#include <cstring>

#include "codec/inflate.h"
#include "common/rng.h"

namespace dlb::png {
namespace {

Image TestImage(int w, int h, int channels, uint64_t seed) {
  Rng rng(seed);
  Image img(w, h, channels);
  for (size_t i = 0; i < img.SizeBytes(); ++i) {
    img.Data()[i] = static_cast<uint8_t>(rng.UniformU64(256));
  }
  return img;
}

// --- hand-rolled PNG writer so tests can exercise filters/color types the
// --- encoder never emits ---------------------------------------------------

void AppendBe32(Bytes* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  out->push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  out->push_back(static_cast<uint8_t>(v & 0xFF));
}

void AppendChunk(Bytes* out, const char type[4], const Bytes& payload) {
  AppendBe32(out, static_cast<uint32_t>(payload.size()));
  Bytes crc_input(type, type + 4);
  crc_input.insert(crc_input.end(), payload.begin(), payload.end());
  out->insert(out->end(), type, type + 4);
  out->insert(out->end(), payload.begin(), payload.end());
  AppendBe32(out, Crc32(crc_input));
}

Bytes BuildPng(int w, int h, int color_type, const Bytes& raw_scanlines,
               const Bytes& palette = {}) {
  Bytes out = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1A, '\n'};
  Bytes ihdr;
  AppendBe32(&ihdr, static_cast<uint32_t>(w));
  AppendBe32(&ihdr, static_cast<uint32_t>(h));
  ihdr.push_back(8);
  ihdr.push_back(static_cast<uint8_t>(color_type));
  ihdr.push_back(0);
  ihdr.push_back(0);
  ihdr.push_back(0);
  AppendChunk(&out, "IHDR", ihdr);
  if (!palette.empty()) AppendChunk(&out, "PLTE", palette);
  AppendChunk(&out, "IDAT", flate::ZlibCompress(raw_scanlines));
  AppendChunk(&out, "IEND", {});
  return out;
}

TEST(PngTest, Crc32KnownValue) {
  const Bytes iend = {'I', 'E', 'N', 'D'};
  EXPECT_EQ(Crc32(iend), 0xAE426082u);  // every PNG ends with this CRC
}

TEST(PngTest, SniffRequiresSignature) {
  Image img(2, 2, 3);
  auto encoded = Encode(img);
  ASSERT_TRUE(encoded.ok());
  EXPECT_TRUE(SniffPng(encoded.value()));
  Bytes not_png = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_FALSE(SniffPng(not_png));
}

TEST(PngTest, RgbRoundTripIsLossless) {
  Image img = TestImage(37, 23, 3, 1);
  auto encoded = Encode(img);
  ASSERT_TRUE(encoded.ok());
  auto decoded = Decode(encoded.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value() == img);
}

TEST(PngTest, GrayRoundTripIsLossless) {
  Image img = TestImage(64, 48, 1, 2);
  auto encoded = Encode(img);
  ASSERT_TRUE(encoded.ok());
  auto decoded = Decode(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value() == img);
}

TEST(PngTest, OnePixelImage) {
  Image img(1, 1, 3);
  img.Set(0, 0, 0, 200);
  auto decoded = Decode(Encode(img).value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value() == img);
}

class PngFilterTest : public ::testing::TestWithParam<int> {};

TEST_P(PngFilterTest, AllFiltersDefilterCorrectly) {
  // Build a 6x5 RGB image, filter every scanline with the parameter's
  // filter type BY HAND, and check the decoder reconstructs the original.
  const int w = 6, h = 5, ch = 3;
  Image img = TestImage(w, h, ch, 40 + GetParam());
  const int filter = GetParam();
  const size_t row_bytes = static_cast<size_t>(w) * ch;

  auto paeth = [](int a, int b, int c) {
    const int p = a + b - c;
    const int pa = std::abs(p - a), pb = std::abs(p - b), pc = std::abs(p - c);
    if (pa <= pb && pa <= pc) return a;
    if (pb <= pc) return b;
    return c;
  };

  Bytes raw;
  for (int y = 0; y < h; ++y) {
    raw.push_back(static_cast<uint8_t>(filter));
    for (size_t i = 0; i < row_bytes; ++i) {
      const int cur = img.Row(y)[i];
      const int left = i >= static_cast<size_t>(ch) ? img.Row(y)[i - ch] : 0;
      const int up = y > 0 ? img.Row(y - 1)[i] : 0;
      const int up_left =
          (y > 0 && i >= static_cast<size_t>(ch)) ? img.Row(y - 1)[i - ch] : 0;
      int predictor = 0;
      switch (filter) {
        case 0: predictor = 0; break;
        case 1: predictor = left; break;
        case 2: predictor = up; break;
        case 3: predictor = (left + up) >> 1; break;
        case 4: predictor = paeth(left, up, up_left); break;
      }
      raw.push_back(static_cast<uint8_t>(cur - predictor));
    }
  }
  auto decoded = Decode(BuildPng(w, h, 2, raw));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value() == img) << "filter " << filter;
}

std::string FilterName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"None", "Sub", "Up", "Average",
                                       "Paeth"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Filters, PngFilterTest, ::testing::Range(0, 5),
                         FilterName);

TEST(PngTest, RgbaAlphaDropped) {
  // Color type 6: RGBA scanlines; decoder keeps RGB.
  const int w = 3, h = 2;
  Bytes raw;
  uint8_t v = 1;
  for (int y = 0; y < h; ++y) {
    raw.push_back(0);  // filter none
    for (int x = 0; x < w; ++x) {
      raw.push_back(v++);        // R
      raw.push_back(v++);        // G
      raw.push_back(v++);        // B
      raw.push_back(0x80);       // A (ignored)
    }
  }
  auto decoded = Decode(BuildPng(w, h, 6, raw));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().Channels(), 3);
  EXPECT_EQ(decoded.value().At(0, 0, 0), 1);
  EXPECT_EQ(decoded.value().At(2, 1, 2), 18);
}

TEST(PngTest, PaletteImagesExpand) {
  const Bytes palette = {255, 0, 0, 0, 255, 0, 0, 0, 255};  // R, G, B
  Bytes raw;
  raw.push_back(0);
  raw.push_back(0);  // red
  raw.push_back(1);  // green
  raw.push_back(2);  // blue
  auto decoded = Decode(BuildPng(3, 1, 3, raw, palette));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().At(0, 0, 0), 255);
  EXPECT_EQ(decoded.value().At(1, 0, 1), 255);
  EXPECT_EQ(decoded.value().At(2, 0, 2), 255);
}

TEST(PngTest, PaletteIndexOutOfRangeRejected) {
  const Bytes palette = {255, 0, 0};  // one entry
  Bytes raw = {0, 5};                 // index 5 out of range
  EXPECT_EQ(Decode(BuildPng(1, 1, 3, raw, palette)).status().code(),
            StatusCode::kCorruptData);
}

TEST(PngErrorTest, ChunkCrcValidated) {
  Image img = TestImage(8, 8, 3, 3);
  auto encoded = Encode(img);
  ASSERT_TRUE(encoded.ok());
  Bytes data = encoded.value();
  data[20] ^= 0xFF;  // corrupt inside IHDR payload
  EXPECT_EQ(Decode(data).status().code(), StatusCode::kCorruptData);
}

TEST(PngErrorTest, TruncationsNeverCrash) {
  Image img = TestImage(16, 12, 3, 4);
  auto encoded = Encode(img);
  ASSERT_TRUE(encoded.ok());
  for (size_t cut = 0; cut < encoded.value().size(); cut += 3) {
    auto r = Decode(ByteSpan(encoded.value().data(), cut));
    EXPECT_FALSE(r.ok()) << cut;
  }
}

TEST(PngErrorTest, RandomCorruptionNeverCrashes) {
  Image img = TestImage(24, 18, 3, 5);
  const Bytes pristine = Encode(img).value();
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes data = pristine;
    data[rng.UniformU64(data.size())] =
        static_cast<uint8_t>(rng.UniformU64(256));
    (void)Decode(data);  // any Status is fine; crashing is not
  }
}

TEST(PngErrorTest, InterlaceRejectedCleanly) {
  Bytes raw = {0, 1, 2, 3};
  Bytes data = BuildPng(1, 1, 2, raw);
  // Patch the interlace byte inside IHDR (offset: 8 sig + 8 hdr + 12 = 28)
  // and re-CRC by rebuilding.
  Bytes out = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1A, '\n'};
  Bytes ihdr;
  AppendBe32(&ihdr, 1);
  AppendBe32(&ihdr, 1);
  ihdr.push_back(8);
  ihdr.push_back(2);
  ihdr.push_back(0);
  ihdr.push_back(0);
  ihdr.push_back(1);  // Adam7
  AppendChunk(&out, "IHDR", ihdr);
  AppendChunk(&out, "IDAT", flate::ZlibCompress(raw));
  AppendChunk(&out, "IEND", {});
  EXPECT_EQ(Decode(out).status().code(), StatusCode::kUnimplemented);
}

TEST(PngErrorTest, SixteenBitDepthRejected) {
  Bytes out = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1A, '\n'};
  Bytes ihdr;
  AppendBe32(&ihdr, 1);
  AppendBe32(&ihdr, 1);
  ihdr.push_back(16);
  ihdr.push_back(2);
  ihdr.push_back(0);
  ihdr.push_back(0);
  ihdr.push_back(0);
  AppendChunk(&out, "IHDR", ihdr);
  EXPECT_EQ(Decode(out).status().code(), StatusCode::kUnimplemented);
}

TEST(PngTest, MultipleIdatChunksConcatenate) {
  // Split the compressed stream across two IDAT chunks.
  const int w = 4, h = 3;
  Image img = TestImage(w, h, 3, 9);
  Bytes raw;
  for (int y = 0; y < h; ++y) {
    raw.push_back(0);
    raw.insert(raw.end(), img.Row(y), img.Row(y) + w * 3);
  }
  const Bytes idat = flate::ZlibCompress(raw);
  Bytes out = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1A, '\n'};
  Bytes ihdr;
  AppendBe32(&ihdr, w);
  AppendBe32(&ihdr, h);
  ihdr.push_back(8);
  ihdr.push_back(2);
  ihdr.push_back(0);
  ihdr.push_back(0);
  ihdr.push_back(0);
  AppendChunk(&out, "IHDR", ihdr);
  const size_t half = idat.size() / 2;
  AppendChunk(&out, "IDAT", Bytes(idat.begin(), idat.begin() + half));
  AppendChunk(&out, "IDAT", Bytes(idat.begin() + half, idat.end()));
  AppendChunk(&out, "IEND", {});
  auto decoded = Decode(out);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value() == img);
}

}  // namespace
}  // namespace dlb::png
