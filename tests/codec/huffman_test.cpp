#include "codec/huffman.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace dlb::jpeg {
namespace {

TEST(HuffmanBuildTest, StandardTablesBuild) {
  EXPECT_TRUE(HuffmanEncoder::Build(StdLumaDc()).ok());
  EXPECT_TRUE(HuffmanEncoder::Build(StdLumaAc()).ok());
  EXPECT_TRUE(HuffmanEncoder::Build(StdChromaDc()).ok());
  EXPECT_TRUE(HuffmanEncoder::Build(StdChromaAc()).ok());
  EXPECT_TRUE(HuffmanDecoder::Build(StdLumaDc()).ok());
  EXPECT_TRUE(HuffmanDecoder::Build(StdLumaAc()).ok());
  EXPECT_TRUE(HuffmanDecoder::Build(StdChromaDc()).ok());
  EXPECT_TRUE(HuffmanDecoder::Build(StdChromaAc()).ok());
}

TEST(HuffmanBuildTest, RejectsMismatchedCounts) {
  HuffmanSpec bad;
  bad.bits[0] = 2;  // claims 2 codes of length 1
  bad.vals = {7};   // but provides 1 value
  EXPECT_FALSE(HuffmanEncoder::Build(bad).ok());
  EXPECT_FALSE(HuffmanDecoder::Build(bad).ok());
}

TEST(HuffmanBuildTest, RejectsOverfullCodeSpace) {
  HuffmanSpec bad;
  bad.bits[0] = 3;  // 3 codes of length 1 cannot exist
  bad.vals = {1, 2, 3};
  EXPECT_FALSE(HuffmanDecoder::Build(bad).ok());
}

TEST(HuffmanBuildTest, RejectsDuplicateSymbols) {
  HuffmanSpec bad;
  bad.bits[1] = 2;
  bad.vals = {5, 5};
  EXPECT_FALSE(HuffmanEncoder::Build(bad).ok());
}

class HuffmanRoundTripTest
    : public ::testing::TestWithParam<const HuffmanSpec*> {};

TEST_P(HuffmanRoundTripTest, EverySymbolRoundTrips) {
  const HuffmanSpec& spec = *GetParam();
  auto enc = HuffmanEncoder::Build(spec);
  auto dec = HuffmanDecoder::Build(spec);
  ASSERT_TRUE(enc.ok());
  ASSERT_TRUE(dec.ok());
  Bytes out;
  BitWriter bw(&out);
  for (uint8_t sym : spec.vals) enc.value().Encode(bw, sym);
  bw.Flush();
  BitReader br(out);
  for (uint8_t sym : spec.vals) {
    EXPECT_EQ(dec.value().Decode(br), sym);
  }
}

TEST_P(HuffmanRoundTripTest, RandomSymbolStreamRoundTrips) {
  const HuffmanSpec& spec = *GetParam();
  auto enc = HuffmanEncoder::Build(spec);
  auto dec = HuffmanDecoder::Build(spec);
  ASSERT_TRUE(enc.ok());
  ASSERT_TRUE(dec.ok());
  Rng rng(99);
  std::vector<uint8_t> symbols;
  for (int i = 0; i < 5000; ++i) {
    symbols.push_back(spec.vals[rng.UniformU64(spec.vals.size())]);
  }
  Bytes out;
  BitWriter bw(&out);
  for (uint8_t s : symbols) enc.value().Encode(bw, s);
  bw.Flush();
  BitReader br(out);
  for (uint8_t s : symbols) ASSERT_EQ(dec.value().Decode(br), s);
}

INSTANTIATE_TEST_SUITE_P(StandardTables, HuffmanRoundTripTest,
                         ::testing::Values(&StdLumaDc(), &StdLumaAc(),
                                           &StdChromaDc(), &StdChromaAc()),
                         [](const auto& info) {
                           if (info.param == &StdLumaDc()) return "LumaDc";
                           if (info.param == &StdLumaAc()) return "LumaAc";
                           if (info.param == &StdChromaDc()) return "ChromaDc";
                           return "ChromaAc";
                         });

TEST(MagnitudeTest, CategoryBoundaries) {
  EXPECT_EQ(MagnitudeCategory(0), 0);
  EXPECT_EQ(MagnitudeCategory(1), 1);
  EXPECT_EQ(MagnitudeCategory(-1), 1);
  EXPECT_EQ(MagnitudeCategory(2), 2);
  EXPECT_EQ(MagnitudeCategory(3), 2);
  EXPECT_EQ(MagnitudeCategory(-3), 2);
  EXPECT_EQ(MagnitudeCategory(4), 3);
  EXPECT_EQ(MagnitudeCategory(255), 8);
  EXPECT_EQ(MagnitudeCategory(-1024), 11);
}

TEST(MagnitudeTest, ExtendInvertsBits) {
  // Every value in [-1023, 1023] must round-trip through its category.
  for (int v = -1023; v <= 1023; ++v) {
    const int ssss = MagnitudeCategory(v);
    const uint32_t bits = MagnitudeBits(v, ssss);
    EXPECT_EQ(ExtendValue(static_cast<int>(bits), ssss), v) << "v=" << v;
  }
}

TEST(HuffmanDecodeTest, MalformedStreamReturnsError) {
  auto dec = HuffmanDecoder::Build(StdLumaDc());
  ASSERT_TRUE(dec.ok());
  BitReader br(ByteSpan{});  // nothing to read
  EXPECT_EQ(dec.value().Decode(br), -1);
}

}  // namespace
}  // namespace dlb::jpeg
