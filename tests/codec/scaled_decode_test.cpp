// Golden tests for DCT-domain decode-to-scale (DESIGN.md §5.8).
//
// Contract under test:
//   * kFast and kScalar produce byte-identical images at every scale
//     (1/1, 1/2, 1/4, 1/8) — the scaled vector arms are exact twins of the
//     scaled integer kernels.
//   * The integer scaled transforms track the float scaled-basis oracle
//     (kReference mode) within the same bound as the full-resolution path.
//   * Scaled decode approximates full decode + reference area resize to the
//     same dimensions: the DCT window is a different low-pass filter than a
//     box average, so the comparison is bounded in the mean, with the DC
//     path (1/8 scale ≈ per-block means) agreeing most tightly.
//   * The scale-selection rule picks the largest denominator that still
//     covers the target, and the legacy Decode() signature stays a faithful
//     forwarding wrapper.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "codec/dct.h"
#include "codec/jpeg_decoder.h"
#include "codec/jpeg_encoder.h"
#include "codec/kernels.h"
#include "common/rng.h"
#include "common/simd.h"
#include "image/image.h"
#include "image/resize.h"

namespace dlb::jpeg {
namespace {

using simd::KernelMode;
using simd::ScopedKernelMode;

Image NoisyScene(int w, int h, int channels, uint64_t seed) {
  Rng rng(seed);
  Image img(w, h, channels);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < channels; ++c) {
        const int base = (x * 3 + y * 2 + c * 60) % 256;
        const int noise = static_cast<int>(rng.UniformInt(-90, 90));
        int v = base + noise;
        v = v < 0 ? 0 : (v > 255 ? 255 : v);
        img.Set(x, y, c, static_cast<uint8_t>(v));
      }
    }
  }
  return img;
}

Image SmoothScene(int w, int h, int channels) {
  Image img(w, h, channels);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < channels; ++c) {
        const double v = 128.0 + 100.0 * std::sin(x * 0.05 + c) *
                                     std::cos(y * 0.04);
        img.Set(x, y, c,
                static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v)));
      }
    }
  }
  return img;
}

struct ScaledParam {
  int width;
  int height;
  int channels;
  int quality;
  Subsampling subsampling;
  int restart_interval;
};

std::string ParamName(const ::testing::TestParamInfo<ScaledParam>& info) {
  const ScaledParam& p = info.param;
  const char* sub = p.subsampling == Subsampling::k420
                        ? "s420"
                        : (p.subsampling == Subsampling::k422 ? "s422" : "s444");
  return std::to_string(p.width) + "x" + std::to_string(p.height) + "c" +
         std::to_string(p.channels) + "q" + std::to_string(p.quality) + sub +
         "r" + std::to_string(p.restart_interval);
}

class ScaledDecodeTest : public ::testing::TestWithParam<ScaledParam> {
 protected:
  Bytes Fixture() {
    const ScaledParam& p = GetParam();
    Image src = NoisyScene(p.width, p.height, p.channels, 0x5CA1ED);
    EncodeOptions opts;
    opts.quality = p.quality;
    opts.subsampling = p.subsampling;
    opts.restart_interval = p.restart_interval;
    auto encoded = Encode(src, opts);
    EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
    return encoded.ok() ? encoded.value() : Bytes{};
  }
};

constexpr int kScales[] = {1, 2, 4, 8};

TEST_P(ScaledDecodeTest, FastAndScalarArmsAreByteIdenticalAtEveryScale) {
  const Bytes jpeg = Fixture();
  ASSERT_FALSE(jpeg.empty());
  for (int denom : kScales) {
    DecodeOptions opts;
    opts.scale_denom = denom;
    auto fast = [&] {
      ScopedKernelMode mode(KernelMode::kFast);
      return Decode(jpeg, opts);
    }();
    auto scalar = [&] {
      ScopedKernelMode mode(KernelMode::kScalar);
      return Decode(jpeg, opts);
    }();
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
    EXPECT_EQ(fast.value().scale_denom, denom);
    EXPECT_EQ(scalar.value().scale_denom, denom);
    EXPECT_TRUE(fast.value().image == scalar.value().image)
        << "fast/scalar divergence at 1/" << denom
        << ", kernels: " << simd::KernelInfo();
  }
}

TEST_P(ScaledDecodeTest, ScaledDimensionsAreCeilOfFullOverDenom) {
  const Bytes jpeg = Fixture();
  ASSERT_FALSE(jpeg.empty());
  const ScaledParam& p = GetParam();
  for (int denom : kScales) {
    DecodeOptions opts;
    opts.scale_denom = denom;
    auto result = Decode(jpeg, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().image.Width(), ScaledDim(p.width, denom));
    EXPECT_EQ(result.value().image.Height(), ScaledDim(p.height, denom));
    EXPECT_EQ(result.value().image.Channels(), p.channels);
  }
}

TEST_P(ScaledDecodeTest, FastTracksScaledFloatReferenceWithinTwoLsb) {
  const Bytes jpeg = Fixture();
  ASSERT_FALSE(jpeg.empty());
  for (int denom : kScales) {
    DecodeOptions opts;
    opts.scale_denom = denom;
    auto fast = [&] {
      ScopedKernelMode mode(KernelMode::kFast);
      return Decode(jpeg, opts);
    }();
    auto reference = [&] {
      ScopedKernelMode mode(KernelMode::kReference);
      return Decode(jpeg, opts);
    }();
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const Image& a = fast.value().image;
    const Image& b = reference.value().image;
    ASSERT_EQ(a.SizeBytes(), b.SizeBytes());
    // +/-1 per fixed-point iDCT sample in each of Y, Cb, Cr can align
    // through the BT.601 mix (1.402 * dCr + dY ~= 2.4), so the per-channel
    // bound is 3 codes.
    int worst = 0;
    for (size_t i = 0; i < a.SizeBytes(); ++i) {
      const int d = std::abs(static_cast<int>(a.Data()[i]) -
                             static_cast<int>(b.Data()[i]));
      worst = d > worst ? d : worst;
    }
    EXPECT_LE(worst, 3) << "drift vs float scaled oracle at 1/" << denom;
  }
}

TEST_P(ScaledDecodeTest, ScaledDecodeApproximatesFullDecodePlusResize) {
  const Bytes jpeg = Fixture();
  ASSERT_FALSE(jpeg.empty());
  auto full = Decode(jpeg);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  for (int denom : {2, 4, 8}) {
    DecodeOptions opts;
    opts.scale_denom = denom;
    auto scaled = Decode(jpeg, opts);
    ASSERT_TRUE(scaled.ok()) << scaled.status().ToString();
    const Image& s = scaled.value().image;
    auto resized = detail::ResizeReference(full.value(), s.Width(),
                                           s.Height(), ResizeFilter::kArea);
    ASSERT_TRUE(resized.ok()) << resized.status().ToString();
    auto mad = Image::MeanAbsDiff(s, resized.value());
    ASSERT_TRUE(mad.ok()) << mad.status().ToString();
    // The n-point DCT window and the box average are different low-pass
    // filters; on a noise-dominated scene much of the energy sits in bands
    // the two filters treat differently, so the pointwise comparison is only
    // a coarse sanity net here (the smooth-scene test below carries the
    // tight pointwise claim).
    EXPECT_LE(mad.value(), 30.0)
        << "1/" << denom << " diverged from full-decode + area resize";
    // Systematic errors (wrong amplitude, misindexed planes) shift the
    // global mean; low-pass filter choice does not. Ragged edge blocks see
    // replicated padding in the DCT path but only real pixels in the box
    // average, so outputs that are all boundary (tiny images) get slack.
    double sum_s = 0.0;
    double sum_r = 0.0;
    for (size_t i = 0; i < s.SizeBytes(); ++i) {
      sum_s += s.Data()[i];
      sum_r += resized.value().Data()[i];
    }
    const double mean_bound = s.Width() * s.Height() < 100 ? 6.0 : 3.0;
    EXPECT_LE(std::abs(sum_s - sum_r) / static_cast<double>(s.SizeBytes()),
              mean_bound)
        << "global mean shifted at 1/" << denom;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, ScaledDecodeTest,
    ::testing::Values(
        ScaledParam{64, 64, 3, 85, Subsampling::k444, 0},
        ScaledParam{64, 64, 3, 85, Subsampling::k422, 0},
        ScaledParam{64, 64, 3, 85, Subsampling::k420, 0},
        ScaledParam{65, 63, 3, 90, Subsampling::k420, 0},
        ScaledParam{65, 63, 3, 75, Subsampling::k422, 0},
        ScaledParam{17, 9, 3, 85, Subsampling::k420, 3},
        ScaledParam{128, 96, 3, 50, Subsampling::k420, 7},
        ScaledParam{96, 80, 1, 85, Subsampling::k444, 0},
        ScaledParam{500, 375, 3, 85, Subsampling::k420, 0}),
    ParamName);

// A smooth scene keeps both low-pass filters near each other pointwise, so
// the scaled decode must agree with full decode + area resize tightly, not
// just in the mean.
TEST(ScaledDecodeSmoothTest, SmoothSceneAgreesPointwise) {
  Image src = SmoothScene(160, 120, 3);
  EncodeOptions eopts;
  eopts.quality = 92;
  eopts.subsampling = Subsampling::k444;
  auto encoded = Encode(src, eopts);
  ASSERT_TRUE(encoded.ok());
  auto full = Decode(encoded.value());
  ASSERT_TRUE(full.ok());
  for (int denom : {2, 4, 8}) {
    DecodeOptions opts;
    opts.scale_denom = denom;
    auto scaled = Decode(encoded.value(), opts);
    ASSERT_TRUE(scaled.ok());
    const Image& s = scaled.value().image;
    auto resized = detail::ResizeReference(full.value(), s.Width(),
                                           s.Height(), ResizeFilter::kArea);
    ASSERT_TRUE(resized.ok());
    auto mad = Image::MeanAbsDiff(s, resized.value());
    ASSERT_TRUE(mad.ok());
    EXPECT_LE(mad.value(), 2.5) << "smooth-scene drift at 1/" << denom;
  }
}

TEST(ScaledDecodeApiTest, ChooseScaleDenomPicksLargestCoveringScale) {
  // Covering requires BOTH scaled dimensions >= target: 500x375 at 1/2 is
  // 250x188, which covers 224x160 but not 224x224 (188 < 224).
  EXPECT_EQ(ChooseScaleDenom(500, 375, 224, 160), 2);
  EXPECT_EQ(ChooseScaleDenom(500, 375, 224, 224), 1);
  // 2000x1500 at 1/8 is 250x188 (height short of 224) -> 1/4 (500x375).
  EXPECT_EQ(ChooseScaleDenom(2000, 1500, 224, 224), 4);
  EXPECT_EQ(ChooseScaleDenom(2048, 2048, 224, 224), 8);
  EXPECT_EQ(ChooseScaleDenom(256, 256, 32, 32), 8);
  EXPECT_EQ(ChooseScaleDenom(256, 256, 33, 32), 4);
  EXPECT_EQ(ChooseScaleDenom(64, 64, 64, 64), 1);
  EXPECT_EQ(ChooseScaleDenom(64, 64, 65, 65), 1);  // never upscale
  EXPECT_EQ(ChooseScaleDenom(64, 64, 0, 0), 1);    // unset target
  EXPECT_EQ(ChooseScaleDenom(0, 0, 224, 224), 1);
}

TEST(ScaledDecodeApiTest, TargetDimensionsDriveScaleSelection) {
  Image src = NoisyScene(500, 375, 3, 0xBEEF);
  EncodeOptions eopts;
  eopts.quality = 85;
  eopts.subsampling = Subsampling::k420;
  auto encoded = Encode(src, eopts);
  ASSERT_TRUE(encoded.ok());
  DecodeOptions opts;
  opts.target_w = 224;
  opts.target_h = 160;
  auto result = Decode(encoded.value(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().scale_denom, 2);
  EXPECT_EQ(result.value().image.Width(), 250);
  EXPECT_EQ(result.value().image.Height(), 188);
}

TEST(ScaledDecodeApiTest, LegacySignatureForwardsToFullResolution) {
  Image src = NoisyScene(64, 48, 3, 0xFACE);
  auto encoded = Encode(src, EncodeOptions{});
  ASSERT_TRUE(encoded.ok());
  auto legacy = Decode(encoded.value());
  auto options = Decode(encoded.value(), DecodeOptions{});
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options.value().scale_denom, 1);
  EXPECT_TRUE(legacy.value() == options.value().image);
}

TEST(ScaledDecodeApiTest, InvalidOptionsRejected) {
  Image src = NoisyScene(32, 32, 3, 1);
  auto encoded = Encode(src, EncodeOptions{});
  ASSERT_TRUE(encoded.ok());
  DecodeOptions bad_denom;
  bad_denom.scale_denom = 3;
  EXPECT_EQ(Decode(encoded.value(), bad_denom).status().code(),
            StatusCode::kInvalidArgument);
  DecodeOptions bad_num;
  bad_num.scale_num = 2;
  EXPECT_EQ(Decode(encoded.value(), bad_num).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ScaledDecodeApiTest, DcOnlyBlockPreservesMeanAtEveryScale) {
  // A flat image is DC-only after quantisation; every scale must reproduce
  // the same flat value (the scaled transforms share the full transform's
  // coefficient weights, so the block mean is scale-invariant).
  Image src(64, 64, 1);
  for (size_t i = 0; i < src.SizeBytes(); ++i) src.Data()[i] = 200;
  EncodeOptions eopts;
  eopts.quality = 90;
  auto encoded = Encode(src, eopts);
  ASSERT_TRUE(encoded.ok());
  auto full = Decode(encoded.value());
  ASSERT_TRUE(full.ok());
  const uint8_t expect = full.value().At(0, 0, 0);
  for (int denom : kScales) {
    DecodeOptions opts;
    opts.scale_denom = denom;
    auto scaled = Decode(encoded.value(), opts);
    ASSERT_TRUE(scaled.ok());
    for (size_t i = 0; i < scaled.value().image.SizeBytes(); ++i) {
      ASSERT_EQ(scaled.value().image.Data()[i], expect)
          << "flat-field drift at 1/" << denom;
    }
  }
}

TEST(ScaledDecodeKernelTest, ScaledTableMatchesFullTableAtN8) {
  std::array<uint16_t, 64> quant = kStdLumaQuant;
  const kernels::IdctTable full = kernels::BuildIdctTable(quant.data());
  const kernels::IdctTable scaled =
      kernels::BuildIdctTableScaled(quant.data(), 8);
  EXPECT_EQ(full.m, scaled.m);
}

TEST(ScaledDecodeKernelTest, ScaledKernelsMatchFloatOracleDirectly) {
  // Drive the kernels with random coefficient blocks (not just encoder
  // output) and bound them against InverseDctScaledBasis per block.
  Rng rng(0xD1CE);
  std::array<uint16_t, 64> quant = kStdLumaQuant;
  for (int n : {4, 2, 1}) {
    const kernels::IdctTable table =
        kernels::BuildIdctTableScaled(quant.data(), n);
    for (int trial = 0; trial < 200; ++trial) {
      int16_t zz[64];
      for (int i = 0; i < 64; ++i) {
        zz[i] = static_cast<int16_t>(rng.UniformInt(-64, 64));
      }
      float dq[64];
      DequantizeZigZag(zz, quant.data(), dq);
      uint8_t expect[64];
      InverseDctScaledBasis(dq, n, expect);
      uint8_t got[64];
      kernels::DequantIdctScaled(zz, table, n, got, n);
      for (int i = 0; i < n * n; ++i) {
        ASSERT_LE(std::abs(static_cast<int>(got[i]) -
                           static_cast<int>(expect[i])),
                  1)
            << "n=" << n << " trial=" << trial << " sample=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace dlb::jpeg
