#include "codec/kernels.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "codec/color.h"
#include "codec/dct.h"
#include "codec/jpeg_common.h"
#include "common/rng.h"
#include "common/simd.h"

namespace dlb::jpeg::kernels {
namespace {

// Coefficients bounded so |zz * quant| stays well inside the kernel's input
// clamp (engaged only by adversarial streams); see RandomExtremeBlock for
// the clamped regime.
void RandomQuant(Rng& rng, uint16_t quant[64]) {
  for (int i = 0; i < 64; ++i) {
    quant[i] = static_cast<uint16_t>(rng.UniformInt(1, 32));
  }
}

void RandomBlock(Rng& rng, int16_t zz[64], int density_pct) {
  std::memset(zz, 0, 64 * sizeof(int16_t));
  zz[0] = static_cast<int16_t>(rng.UniformInt(-120, 120));
  for (int i = 1; i < 64; ++i) {
    if (rng.UniformInt(0, 99) < density_pct) {
      zz[i] = static_cast<int16_t>(rng.UniformInt(-120, 120));
    }
  }
}

void RandomExtremeBlock(Rng& rng, int16_t zz[64]) {
  for (int i = 0; i < 64; ++i) {
    zz[i] = static_cast<int16_t>(rng.UniformInt(-32768, 32767));
  }
}

TEST(IdctTableTest, DcMultiplierIsQuantTimesScale) {
  uint16_t quant[64];
  for (int i = 0; i < 64; ++i) quant[i] = 1;
  quant[0] = 16;
  const IdctTable t = BuildIdctTable(quant);
  // s[0]*s[0] = 1, so m[0] = quant[0] << kDqBits exactly.
  EXPECT_EQ(t.m[0], 16 << kDqBits);
}

TEST(IdctKernelTest, TracksFloatReferenceWithinOneLsb) {
  Rng rng(7);
  uint16_t quant[64];
  int16_t zz[64];
  uint8_t fast[64], ref[64];
  float dq[64];
  for (int iter = 0; iter < 300; ++iter) {
    RandomQuant(rng, quant);
    const IdctTable t = BuildIdctTable(quant);
    RandomBlock(rng, zz, iter % 101);
    DequantIdct8x8Scalar(zz, t, fast, 8);
    DequantizeZigZag(zz, quant, dq);
    InverseDct8x8Basis(dq, ref);
    for (int i = 0; i < 64; ++i) {
      EXPECT_NEAR(static_cast<int>(fast[i]), static_cast<int>(ref[i]), 1)
          << "iter " << iter << " sample " << i;
    }
  }
}

TEST(IdctKernelTest, DispatchArmMatchesScalarExactly) {
  // On an AVX2 build this pits the vector arm against the scalar arm; on a
  // scalar-only build it degenerates to a self-check. Extreme inputs engage
  // the overflow clamps, which must also match bit for bit.
  Rng rng(21);
  uint16_t quant[64];
  int16_t zz[64];
  uint8_t fast[64], scalar[64];
  for (int iter = 0; iter < 500; ++iter) {
    for (int i = 0; i < 64; ++i) {
      quant[i] = static_cast<uint16_t>(rng.UniformInt(1, 255));
    }
    const IdctTable t = BuildIdctTable(quant);
    if (iter % 3 == 0) {
      RandomExtremeBlock(rng, zz);
    } else {
      RandomBlock(rng, zz, iter % 101);
    }
    DequantIdct8x8(zz, t, fast, 8);
    DequantIdct8x8Scalar(zz, t, scalar, 8);
    EXPECT_EQ(0, std::memcmp(fast, scalar, 64)) << "iter " << iter;
  }
}

TEST(IdctKernelTest, DcOnlyBlockIsConstantFill) {
  uint16_t quant[64];
  for (int i = 0; i < 64; ++i) quant[i] = 8;
  const IdctTable t = BuildIdctTable(quant);
  int16_t zz[64] = {0};
  zz[0] = 16;  // dequantised DC = 128 -> pixel 16 -> 144 after level shift
  uint8_t out[64];
  DequantIdct8x8Scalar(zz, t, out, 8);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], 144);
}

TEST(IdctKernelTest, WritesRespectStride) {
  uint16_t quant[64];
  for (int i = 0; i < 64; ++i) quant[i] = 4;
  const IdctTable t = BuildIdctTable(quant);
  Rng rng(3);
  int16_t zz[64];
  RandomBlock(rng, zz, 50);
  // Render into a 16-wide canvas and check columns 8..15 stay untouched.
  std::vector<uint8_t> canvas(16 * 8, 0xAB);
  uint8_t dense[64];
  DequantIdct8x8Scalar(zz, t, canvas.data(), 16);
  DequantIdct8x8Scalar(zz, t, dense, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_EQ(canvas[y * 16 + x], dense[y * 8 + x]);
    }
    for (int x = 8; x < 16; ++x) EXPECT_EQ(canvas[y * 16 + x], 0xAB);
  }
}

TEST(BlockHasAcTest, DetectsEveryAcPosition) {
  int16_t zz[64] = {0};
  EXPECT_FALSE(BlockHasAc(zz));
  zz[0] = 1234;
  EXPECT_FALSE(BlockHasAc(zz));  // DC is not AC
  for (int i = 1; i < 64; ++i) {
    std::memset(zz, 0, sizeof(zz));
    zz[i] = 1;
    EXPECT_TRUE(BlockHasAc(zz)) << "position " << i;
    zz[i] = -1;
    EXPECT_TRUE(BlockHasAc(zz)) << "position " << i;
  }
}

TEST(ColorRowKernelTest, MatchesPixelConverter) {
  Rng rng(11);
  const int w = 253;
  std::vector<uint8_t> y(w), cb(w), cr(w);
  for (int i = 0; i < w; ++i) {
    y[i] = static_cast<uint8_t>(rng.UniformInt(0, 255));
    cb[i] = static_cast<uint8_t>(rng.UniformInt(0, 255));
    cr[i] = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  std::vector<uint8_t> row(w * 3);
  YcbcrRowToRgb(y.data(), cb.data(), cr.data(), w, row.data());
  for (int x = 0; x < w; ++x) {
    uint8_t r, g, b;
    YcbcrToRgbPixel(y[x], cb[x], cr[x], &r, &g, &b);
    EXPECT_EQ(row[x * 3 + 0], r);
    EXPECT_EQ(row[x * 3 + 1], g);
    EXPECT_EQ(row[x * 3 + 2], b);
  }
}

TEST(ColorRowKernelTest, HalfXMatchesMappedAndPixelConverter) {
  Rng rng(12);
  const int w = 101;
  const int cw = (w + 1) / 2;
  std::vector<uint8_t> y(w), cb(cw), cr(cw);
  for (int i = 0; i < w; ++i) y[i] = static_cast<uint8_t>(rng.UniformInt(0, 255));
  for (int i = 0; i < cw; ++i) {
    cb[i] = static_cast<uint8_t>(rng.UniformInt(0, 255));
    cr[i] = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  std::vector<uint8_t> half(w * 3), mapped(w * 3);
  YcbcrRowToRgbHalfX(y.data(), cb.data(), cr.data(), w, half.data());
  std::vector<int32_t> ident(w), halves(w);
  for (int x = 0; x < w; ++x) {
    ident[x] = x;
    halves[x] = x >> 1;
  }
  YcbcrRowToRgbMapped(y.data(), cb.data(), cr.data(), ident.data(),
                      halves.data(), halves.data(), w, mapped.data());
  EXPECT_EQ(0, std::memcmp(half.data(), mapped.data(), half.size()));
  for (int x = 0; x < w; ++x) {
    uint8_t r, g, b;
    YcbcrToRgbPixel(y[x], cb[x >> 1], cr[x >> 1], &r, &g, &b);
    EXPECT_EQ(half[x * 3 + 0], r);
    EXPECT_EQ(half[x * 3 + 1], g);
    EXPECT_EQ(half[x * 3 + 2], b);
  }
}

TEST(KernelInfoTest, ReportsModeAndIsa) {
  const std::string info = dlb::simd::KernelInfo();
  EXPECT_NE(info.find("isa="), std::string::npos);
  EXPECT_NE(info.find("mode=fast"), std::string::npos);
  {
    dlb::simd::ScopedKernelMode scoped(dlb::simd::KernelMode::kScalar);
    EXPECT_NE(dlb::simd::KernelInfo().find("mode=scalar"), std::string::npos);
  }
  EXPECT_EQ(dlb::simd::GetKernelMode(), dlb::simd::KernelMode::kFast);
}

}  // namespace
}  // namespace dlb::jpeg::kernels
