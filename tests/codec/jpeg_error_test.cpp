// Failure-injection tests: the decoder must reject malformed inputs with a
// clean Status, never crash or read out of bounds.
#include <gtest/gtest.h>

#include "codec/jpeg_decoder.h"
#include "codec/jpeg_encoder.h"
#include "common/rng.h"

namespace dlb::jpeg {
namespace {

Image SmallScene() {
  Image img(32, 24, 3);
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 32; ++x) {
      for (int c = 0; c < 3; ++c) {
        img.Set(x, y, c, static_cast<uint8_t>((x * 7 + y * 3 + c * 50) % 256));
      }
    }
  }
  return img;
}

Bytes ValidJpeg() {
  auto e = Encode(SmallScene());
  EXPECT_TRUE(e.ok());
  return e.value();
}

TEST(JpegErrorTest, EmptyInput) {
  EXPECT_FALSE(Decode(ByteSpan{}).ok());
  EXPECT_FALSE(PeekInfo(ByteSpan{}).ok());
}

TEST(JpegErrorTest, MissingSoi) {
  Bytes data = ValidJpeg();
  data[1] = 0xD9;  // EOI instead of SOI
  EXPECT_EQ(Decode(data).status().code(), StatusCode::kCorruptData);
}

TEST(JpegErrorTest, TruncatedAtEveryHeaderPrefix) {
  const Bytes data = ValidJpeg();
  // Cut the stream short at every byte inside the header region: the
  // decoder must error (never crash) for all of them.
  auto header = ParseHeaders(data);
  ASSERT_TRUE(header.ok());
  const size_t header_end = header.value().entropy_offset;
  for (size_t cut = 0; cut < header_end; ++cut) {
    auto r = Decode(ByteSpan(data.data(), cut));
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
}

TEST(JpegErrorTest, TruncatedEntropyData) {
  const Bytes data = ValidJpeg();
  auto header = ParseHeaders(data);
  ASSERT_TRUE(header.ok());
  // Keep headers, drop most of the scan.
  const size_t cut = header.value().entropy_offset + 4;
  auto r = Decode(ByteSpan(data.data(), cut));
  EXPECT_FALSE(r.ok());
}

TEST(JpegErrorTest, ProgressiveRejectedCleanly) {
  Bytes data = ValidJpeg();
  // Rewrite SOF0 marker to SOF2 (progressive).
  for (size_t i = 0; i + 1 < data.size(); ++i) {
    if (data[i] == 0xFF && data[i + 1] == kSOF0) {
      data[i + 1] = kSOF2;
      break;
    }
  }
  EXPECT_EQ(Decode(data).status().code(), StatusCode::kUnimplemented);
}

TEST(JpegErrorTest, ZeroDimensionRejected) {
  Bytes data = ValidJpeg();
  for (size_t i = 0; i + 1 < data.size(); ++i) {
    if (data[i] == 0xFF && data[i + 1] == kSOF0) {
      // height bytes are at i+5..i+6
      data[i + 5] = 0;
      data[i + 6] = 0;
      break;
    }
  }
  EXPECT_FALSE(Decode(data).ok());
}

TEST(JpegErrorTest, RandomByteFlipsNeverCrash) {
  const Bytes pristine = ValidJpeg();
  Rng rng(77);
  int failures = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Bytes data = pristine;
    // Flip 1-4 random bytes anywhere in the stream.
    const int flips = 1 + static_cast<int>(rng.UniformU64(4));
    for (int f = 0; f < flips; ++f) {
      data[rng.UniformU64(data.size())] =
          static_cast<uint8_t>(rng.UniformU64(256));
    }
    auto r = Decode(data);  // must not crash; may succeed or fail
    if (!r.ok()) ++failures;
  }
  // Sanity: most random corruptions are detected.
  EXPECT_GT(failures, 0);
}

TEST(JpegErrorTest, RandomTruncationsNeverCrash) {
  const Bytes pristine = ValidJpeg();
  Rng rng(78);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t cut = rng.UniformU64(pristine.size());
    auto r = Decode(ByteSpan(pristine.data(), cut));
    (void)r;  // any Status is acceptable; crashing is not
  }
}

TEST(JpegErrorTest, GarbageInputNeverCrashes) {
  Rng rng(79);
  for (int trial = 0; trial < 100; ++trial) {
    Bytes garbage(512);
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.UniformU64(256));
    garbage[0] = 0xFF;
    garbage[1] = 0xD8;  // valid SOI so parsing proceeds
    auto r = Decode(garbage);
    (void)r;
  }
}

TEST(JpegErrorTest, EntropyDecodeValidatesBounds) {
  const Bytes data = ValidJpeg();
  auto header = ParseHeaders(data);
  ASSERT_TRUE(header.ok());
  JpegHeader h = header.value();
  h.entropy_offset = data.size();  // out of bounds
  h.entropy_size = 100;
  EXPECT_FALSE(EntropyDecode(h, data).ok());
}

TEST(JpegErrorTest, InverseTransformValidatesShape) {
  const Bytes data = ValidJpeg();
  auto header = ParseHeaders(data);
  ASSERT_TRUE(header.ok());
  CoeffData wrong;
  wrong.coeffs.resize(1);  // header says 3 components
  EXPECT_FALSE(InverseTransform(header.value(), wrong).ok());
}

TEST(JpegErrorTest, ColorReconstructValidatesShape) {
  const Bytes data = ValidJpeg();
  auto header = ParseHeaders(data);
  ASSERT_TRUE(header.ok());
  PlaneData wrong;
  wrong.planes.resize(2);
  EXPECT_FALSE(ColorReconstruct(header.value(), wrong).ok());
}

}  // namespace
}  // namespace dlb::jpeg
