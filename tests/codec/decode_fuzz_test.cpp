// Byte-mutation fuzzing of the JPEG decoder with fixed seeds: every mutated
// stream must either decode successfully or come back with an error Status.
// Crashing, hanging or aborting on untrusted bytes is the only failure mode
// — the pipeline feeds the decoder whatever arrives off the wire.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "codec/jpeg_decoder.h"
#include "codec/jpeg_encoder.h"
#include "common/fault.h"
#include "common/rng.h"

namespace dlb::jpeg {
namespace {

Image Scene(int w, int h, int channels) {
  Image img(w, h, channels);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < channels; ++c) {
        img.Set(x, y, c,
                static_cast<uint8_t>((x * 7 + y * 3 + c * 50 + w + h) % 256));
      }
    }
  }
  return img;
}

/// A corpus that covers the decoder's structural variety: sizes that are
/// and aren't MCU-aligned, all three subsampling modes, grayscale, restart
/// markers, and both quality extremes.
std::vector<Bytes> Corpus() {
  std::vector<Bytes> corpus;
  auto add = [&](const Image& img, EncodeOptions opts) {
    auto encoded = Encode(img, opts);
    EXPECT_TRUE(encoded.ok());
    corpus.push_back(std::move(encoded).value());
  };
  add(Scene(32, 24, 3), {});
  add(Scene(64, 48, 3), {.quality = 95, .subsampling = Subsampling::k444});
  add(Scene(17, 13, 3), {.quality = 40, .subsampling = Subsampling::k422});
  add(Scene(48, 48, 1), {.quality = 85});
  add(Scene(40, 32, 3),
      {.quality = 75, .subsampling = Subsampling::k420, .restart_interval = 2});
  return corpus;
}

/// Decode must never crash; when it succeeds the result must be internally
/// consistent (the harness under asan/ubsan makes "no crash" a real check).
void DecodeMustNotCrash(ByteSpan data) {
  auto decoded = Decode(data);
  if (decoded.ok()) {
    const Image& img = decoded.value();
    EXPECT_GT(img.Width(), 0);
    EXPECT_GT(img.Height(), 0);
    EXPECT_EQ(img.SizeBytes(), static_cast<size_t>(img.Width()) *
                                   img.Height() * img.Channels());
  } else {
    EXPECT_NE(decoded.status().code(), StatusCode::kOk);
    EXPECT_FALSE(decoded.status().message().empty());
  }
  // The decode-to-scale path swaps in the scaled iDCT kernels and the
  // scale-aware assembly/upsampling; it must honour the same contract on
  // the same corrupt bytes (1/8 exercises the DC-only fast path).
  DecodeOptions eighth;
  eighth.scale_denom = 8;
  auto scaled = Decode(data, eighth);
  if (scaled.ok()) {
    const Image& img = scaled.value().image;
    EXPECT_EQ(scaled.value().scale_denom, 8);
    EXPECT_GT(img.Width(), 0);
    EXPECT_GT(img.Height(), 0);
    EXPECT_EQ(img.SizeBytes(), static_cast<size_t>(img.Width()) *
                                   img.Height() * img.Channels());
  } else {
    EXPECT_NE(scaled.status().code(), StatusCode::kOk);
  }
  // The header-only probe shares the parsing path and the same contract.
  (void)PeekInfo(data);
}

TEST(DecodeFuzzTest, SingleByteFlipsAtEveryPosition) {
  // Exhaustive single-byte corruption over a small stream: every byte of
  // every header segment and the scan gets each of three flip patterns.
  const Bytes base = Corpus()[0];
  for (size_t pos = 0; pos < base.size(); ++pos) {
    for (uint8_t flip : {0x01, 0x80, 0xFF}) {
      Bytes mutated = base;
      mutated[pos] = static_cast<uint8_t>(mutated[pos] ^ flip);
      DecodeMustNotCrash(mutated);
    }
  }
}

TEST(DecodeFuzzTest, SeededRandomMutationsOverCorpus) {
  // 400 mutation rounds per corpus entry via the fault injector's Corrupt
  // (flip / truncate / garbage-run), seeded so a failure reproduces.
  auto spec = fault::ParseFaultSpec("corrupt_jpeg=1,seed=20260807");
  ASSERT_TRUE(spec.ok());
  fault::FaultInjector injector(spec.value());
  for (const Bytes& base : Corpus()) {
    for (int round = 0; round < 400; ++round) {
      DecodeMustNotCrash(injector.Corrupt(base));
    }
  }
}

TEST(DecodeFuzzTest, MultiByteScribbles) {
  // Heavier damage than Corrupt applies: scribble 1-64 random bytes at
  // random positions, including over segment length fields.
  Rng rng(0xF0CCED);
  for (const Bytes& base : Corpus()) {
    for (int round = 0; round < 200; ++round) {
      Bytes mutated = base;
      const int writes = 1 + static_cast<int>(rng.UniformU64(64));
      for (int i = 0; i < writes; ++i) {
        mutated[rng.UniformU64(mutated.size())] =
            static_cast<uint8_t>(rng.UniformU64(256));
      }
      DecodeMustNotCrash(mutated);
    }
  }
}

TEST(DecodeFuzzTest, TruncationAtEveryLength) {
  const Bytes base = Corpus()[0];
  for (size_t len = 0; len <= base.size(); ++len) {
    DecodeMustNotCrash(ByteSpan(base.data(), len));
  }
}

TEST(DecodeFuzzTest, RandomGarbageStreams) {
  // Pure noise, with and without a plausible SOI prefix.
  Rng rng(0xBADBEEF);
  for (int round = 0; round < 200; ++round) {
    Bytes garbage(1 + rng.UniformU64(2048));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.UniformU64(256));
    DecodeMustNotCrash(garbage);
    if (garbage.size() >= 2) {
      garbage[0] = 0xFF;
      garbage[1] = 0xD8;  // SOI
      DecodeMustNotCrash(garbage);
    }
  }
}

TEST(DecodeFuzzTest, GiantDimensionHeadersAreRejectedBeforeAllocation) {
  // Craft a 65535x65535 SOF0 inside an otherwise valid stream: ~12 GB of
  // planes if the decoder believed it. The size cap must reject it as
  // corrupt data instead of attempting the allocation.
  Bytes data = Corpus()[0];
  size_t sof = 0;
  for (size_t i = 0; i + 1 < data.size(); ++i) {
    if (data[i] == 0xFF && data[i + 1] == 0xC0) {
      sof = i;
      break;
    }
  }
  ASSERT_GT(sof, 0u);
  // SOF0 payload: marker(2) len(2) precision(1) height(2) width(2).
  data[sof + 5] = 0xFF;
  data[sof + 6] = 0xFF;
  data[sof + 7] = 0xFF;
  data[sof + 8] = 0xFF;
  auto decoded = Decode(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruptData);
  EXPECT_NE(decoded.status().message().find("size cap"), std::string::npos)
      << decoded.status().message();
}

TEST(DecodeFuzzTest, DimensionJustUnderTheCapStillParses) {
  // The cap must not reject plausible large-but-real images: header parsing
  // (geometry finalisation included) accepts dimensions under the cap even
  // though the entropy data then fails — proving the cap triggers on the
  // header, not on any big image.
  Bytes data = Corpus()[0];
  size_t sof = 0;
  for (size_t i = 0; i + 1 < data.size(); ++i) {
    if (data[i] == 0xFF && data[i + 1] == 0xC0) {
      sof = i;
      break;
    }
  }
  ASSERT_GT(sof, 0u);
  // 4096 x 4096 x 1.5 (4:2:0) = 24M samples, well under the 2^27 cap.
  data[sof + 5] = 0x10;
  data[sof + 6] = 0x00;
  data[sof + 7] = 0x10;
  data[sof + 8] = 0x00;
  auto header = ParseHeaders(data);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header.value().width, 4096);
  EXPECT_EQ(header.value().height, 4096);
  DecodeMustNotCrash(data);  // entropy decode fails cleanly, no crash
}

}  // namespace
}  // namespace dlb::jpeg
