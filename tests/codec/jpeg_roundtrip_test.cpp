// Property-style roundtrip tests: encode with our encoder, decode with our
// decoder, and bound the lossy reconstruction error. Parameterised over
// image sizes (including awkward non-MCU-aligned ones), qualities,
// subsampling modes and restart intervals.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <utility>

#include "codec/jpeg_decoder.h"
#include "codec/jpeg_encoder.h"
#include "common/rng.h"
#include "image/image.h"

namespace dlb::jpeg {
namespace {

/// Smooth procedural test scene: gradients + a few discs. Smooth content
/// keeps the JPEG roundtrip error small and stable across qualities.
Image TestScene(int w, int h, int channels, uint64_t seed) {
  Rng rng(seed);
  Image img(w, h, channels);
  const int cx = w / 3 + static_cast<int>(rng.UniformU64(w / 3 + 1));
  const int cy = h / 3 + static_cast<int>(rng.UniformU64(h / 3 + 1));
  const int radius = std::max(2, std::min(w, h) / 4);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int dx = x - cx, dy = y - cy;
      const bool inside = dx * dx + dy * dy < radius * radius;
      for (int c = 0; c < channels; ++c) {
        int v = (x * 2 + y + c * 40) % 256;
        if (inside) v = 255 - v;
        img.Set(x, y, c, static_cast<uint8_t>(v));
      }
    }
  }
  return img;
}

struct RoundTripParam {
  int width;
  int height;
  int channels;
  int quality;
  Subsampling subsampling;
  int restart_interval;
};

class JpegRoundTripTest : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(JpegRoundTripTest, EncodeDecodeWithinErrorBound) {
  const RoundTripParam& p = GetParam();
  Image src = TestScene(p.width, p.height, p.channels, 1234);
  EncodeOptions opts;
  opts.quality = p.quality;
  opts.subsampling = p.subsampling;
  opts.restart_interval = p.restart_interval;
  auto encoded = Encode(src, opts);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  EXPECT_GT(encoded.value().size(), 100u);

  auto decoded = Decode(encoded.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().Width(), p.width);
  EXPECT_EQ(decoded.value().Height(), p.height);
  EXPECT_EQ(decoded.value().Channels(), p.channels);

  auto diff = Image::MeanAbsDiff(src, decoded.value());
  ASSERT_TRUE(diff.ok());
  // Error grows as quality drops and with chroma subsampling; these bounds
  // are loose enough to be robust and tight enough to catch real bugs
  // (a broken stage produces diffs of 40+).
  const double bound = p.quality >= 85 ? 10.0 : (p.quality >= 50 ? 14.0 : 22.0);
  EXPECT_LT(diff.value(), bound)
      << "quality=" << p.quality << " sub420="
      << (p.subsampling == Subsampling::k420);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JpegRoundTripTest,
    ::testing::Values(
        // MCU-aligned and non-aligned sizes, both subsamplings.
        RoundTripParam{64, 64, 3, 85, Subsampling::k420, 0},
        RoundTripParam{64, 64, 3, 85, Subsampling::k422, 0},
        RoundTripParam{64, 64, 3, 85, Subsampling::k444, 0},
        RoundTripParam{65, 63, 3, 85, Subsampling::k422, 0},
        RoundTripParam{17, 9, 3, 85, Subsampling::k422, 3},
        RoundTripParam{65, 63, 3, 85, Subsampling::k420, 0},
        RoundTripParam{17, 9, 3, 85, Subsampling::k420, 0},
        RoundTripParam{8, 8, 3, 85, Subsampling::k444, 0},
        RoundTripParam{1, 1, 3, 85, Subsampling::k420, 0},
        RoundTripParam{500, 375, 3, 85, Subsampling::k420, 0},  // paper size
        RoundTripParam{28, 28, 1, 85, Subsampling::k444, 0},    // MNIST size
        RoundTripParam{100, 40, 1, 85, Subsampling::k444, 0}));

INSTANTIATE_TEST_SUITE_P(
    Qualities, JpegRoundTripTest,
    ::testing::Values(RoundTripParam{96, 80, 3, 30, Subsampling::k420, 0},
                      RoundTripParam{96, 80, 3, 50, Subsampling::k420, 0},
                      RoundTripParam{96, 80, 3, 75, Subsampling::k420, 0},
                      RoundTripParam{96, 80, 3, 95, Subsampling::k444, 0},
                      RoundTripParam{96, 80, 3, 100, Subsampling::k444, 0}));

INSTANTIATE_TEST_SUITE_P(
    RestartMarkers, JpegRoundTripTest,
    ::testing::Values(RoundTripParam{64, 48, 3, 85, Subsampling::k420, 1},
                      RoundTripParam{64, 48, 3, 85, Subsampling::k420, 3},
                      RoundTripParam{64, 48, 3, 85, Subsampling::k444, 5},
                      RoundTripParam{128, 96, 3, 85, Subsampling::k420, 7},
                      RoundTripParam{128, 96, 1, 85, Subsampling::k444, 2}));

TEST(JpegRoundTripTest, FlatImagesAreNearExact) {
  // Constant blocks quantise to pure DC: roundtrip error < 1 level.
  for (uint8_t level : {0, 128, 255}) {
    Image src(40, 24, 3);
    std::memset(src.Data(), level, src.SizeBytes());
    auto decoded = Decode(Encode(src).value());
    ASSERT_TRUE(decoded.ok());
    auto diff = Image::MeanAbsDiff(src, decoded.value());
    ASSERT_TRUE(diff.ok());
    EXPECT_LT(diff.value(), 1.5) << "level " << int(level);
  }
}

TEST(JpegRoundTripTest, WorstCaseNoiseSurvives) {
  // Pure noise is JPEG's worst case; the stream must still roundtrip
  // without structural errors (bounded, if large, pixel error).
  Rng rng(123);
  Image src(64, 64, 3);
  for (size_t i = 0; i < src.SizeBytes(); ++i) {
    src.Data()[i] = static_cast<uint8_t>(rng.UniformU64(256));
  }
  auto encoded = Encode(src, EncodeOptions{.quality = 95,
                                           .subsampling = Subsampling::k444});
  ASSERT_TRUE(encoded.ok());
  auto decoded = Decode(encoded.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().Width(), 64);
  auto diff = Image::MeanAbsDiff(src, decoded.value());
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 40.0);
}

TEST(JpegRoundTripTest, ExtremeAspectRatios) {
  for (auto [w, h] : {std::pair{512, 1}, std::pair{1, 512},
                      std::pair{300, 2}}) {
    Image src = TestScene(w, h, 3, 99);
    auto decoded = Decode(Encode(src).value());
    ASSERT_TRUE(decoded.ok()) << w << "x" << h;
    EXPECT_EQ(decoded.value().Width(), w);
    EXPECT_EQ(decoded.value().Height(), h);
  }
}

TEST(JpegEncoderTest, HigherQualityMeansMoreBytes) {
  Image src = TestScene(128, 128, 3, 5);
  EncodeOptions lo, hi;
  lo.quality = 40;
  hi.quality = 95;
  auto e_lo = Encode(src, lo);
  auto e_hi = Encode(src, hi);
  ASSERT_TRUE(e_lo.ok());
  ASSERT_TRUE(e_hi.ok());
  EXPECT_LT(e_lo.value().size(), e_hi.value().size());
}

TEST(JpegEncoderTest, SubsamplingShrinksOutput) {
  Image src = TestScene(128, 128, 3, 6);
  EncodeOptions s420, s444;
  s420.subsampling = Subsampling::k420;
  s444.subsampling = Subsampling::k444;
  auto e420 = Encode(src, s420);
  auto e444 = Encode(src, s444);
  ASSERT_TRUE(e420.ok());
  ASSERT_TRUE(e444.ok());
  EXPECT_LT(e420.value().size(), e444.value().size());
}

TEST(JpegEncoderTest, RejectsInvalidInput) {
  EXPECT_FALSE(Encode(Image()).ok());
  EXPECT_FALSE(Encode(Image(4, 4, 2)).ok());  // 2 channels unsupported
}

TEST(JpegEncoderTest, OutputStartsWithSoiEndsWithEoi) {
  Image src = TestScene(16, 16, 3, 7);
  auto e = Encode(src);
  ASSERT_TRUE(e.ok());
  const Bytes& b = e.value();
  ASSERT_GE(b.size(), 4u);
  EXPECT_EQ(b[0], 0xFF);
  EXPECT_EQ(b[1], 0xD8);
  EXPECT_EQ(b[b.size() - 2], 0xFF);
  EXPECT_EQ(b[b.size() - 1], 0xD9);
}

TEST(JpegDecoderTest, PeekInfoMatchesWithoutFullDecode) {
  Image src = TestScene(77, 33, 3, 8);
  auto e = Encode(src);
  ASSERT_TRUE(e.ok());
  auto info = PeekInfo(e.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().width, 77);
  EXPECT_EQ(info.value().height, 33);
  EXPECT_EQ(info.value().channels, 3);
}

TEST(JpegDecoderTest, DeterministicDecode) {
  Image src = TestScene(50, 40, 3, 9);
  auto e = Encode(src);
  ASSERT_TRUE(e.ok());
  auto d1 = Decode(e.value());
  auto d2 = Decode(e.value());
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_TRUE(d1.value() == d2.value());
}

}  // namespace
}  // namespace dlb::jpeg
