#include "codec/bit_io.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.h"

namespace dlb::jpeg {
namespace {

TEST(BitWriterTest, PacksMsbFirst) {
  Bytes out;
  BitWriter bw(&out);
  bw.Put(0b101, 3);
  bw.Put(0b00110, 5);
  bw.Flush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0b10100110);
}

TEST(BitWriterTest, FlushPadsWithOnes) {
  Bytes out;
  BitWriter bw(&out);
  bw.Put(0b0, 1);
  bw.Flush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0b01111111);
}

TEST(BitWriterTest, StuffsFfWithZero) {
  Bytes out;
  BitWriter bw(&out);
  bw.Put(0xFF, 8);
  bw.Flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0xFF);
  EXPECT_EQ(out[1], 0x00);
}

TEST(BitReaderTest, ReadsBackWhatWriterWrote) {
  Bytes out;
  BitWriter bw(&out);
  bw.Put(0b1101, 4);
  bw.Put(0x3FF, 10);
  bw.Put(0b01, 2);
  bw.Flush();
  BitReader br(out);
  EXPECT_EQ(br.Get(4), 0b1101);
  EXPECT_EQ(br.Get(10), 0x3FF);
  EXPECT_EQ(br.Get(2), 0b01);
}

TEST(BitReaderTest, UnstuffsFf00) {
  const Bytes data = {0xFF, 0x00, 0xAB};
  BitReader br(data);
  EXPECT_EQ(br.Get(8), 0xFF);
  EXPECT_EQ(br.Get(8), 0xAB);
}

TEST(BitReaderTest, StopsAtRealMarker) {
  const Bytes data = {0x12, 0xFF, 0xD9};  // EOI after one byte
  BitReader br(data);
  EXPECT_EQ(br.Get(8), 0x12);
  EXPECT_EQ(br.Get(8), -1);  // refuses to read past the marker
}

TEST(BitReaderTest, ExhaustedOnEmpty) {
  BitReader br(ByteSpan{});
  EXPECT_EQ(br.GetBit(), -1);
  EXPECT_TRUE(br.Exhausted());
}

TEST(BitReaderTest, ConsumeRestartMarkerAdvances) {
  const Bytes data = {0xFF, 0xD0, 0x80};
  BitReader br(data);
  EXPECT_TRUE(br.ConsumeRestartMarker(0));
  EXPECT_EQ(br.Get(8), 0x80);
}

TEST(BitReaderTest, RestartMarkerIndexMustMatch) {
  const Bytes data = {0xFF, 0xD3};
  BitReader br(data);
  EXPECT_FALSE(br.ConsumeRestartMarker(0));  // expects D0
  EXPECT_TRUE(br.ConsumeRestartMarker(3));
}

TEST(BitReaderTest, RestartMarkerIndexWrapsMod8) {
  const Bytes data = {0xFF, 0xD1};
  BitReader br(data);
  EXPECT_TRUE(br.ConsumeRestartMarker(9));  // 9 & 7 == 1
}

TEST(BitRoundTripTest, ManyRandomValues) {
  Rng rng(21);
  std::vector<std::pair<uint32_t, int>> values;
  Bytes out;
  BitWriter bw(&out);
  for (int i = 0; i < 1000; ++i) {
    const int count = 1 + static_cast<int>(rng.UniformU64(16));
    const uint32_t v = static_cast<uint32_t>(rng.UniformU64(1u << count));
    values.emplace_back(v, count);
    bw.Put(v, count);
  }
  bw.Flush();
  BitReader br(out);
  for (const auto& [v, count] : values) {
    EXPECT_EQ(br.Get(count), static_cast<int32_t>(v));
  }
}

}  // namespace
}  // namespace dlb::jpeg
