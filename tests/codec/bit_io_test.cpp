#include "codec/bit_io.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.h"

namespace dlb::jpeg {
namespace {

TEST(BitWriterTest, PacksMsbFirst) {
  Bytes out;
  BitWriter bw(&out);
  bw.Put(0b101, 3);
  bw.Put(0b00110, 5);
  bw.Flush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0b10100110);
}

TEST(BitWriterTest, FlushPadsWithOnes) {
  Bytes out;
  BitWriter bw(&out);
  bw.Put(0b0, 1);
  bw.Flush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0b01111111);
}

TEST(BitWriterTest, StuffsFfWithZero) {
  Bytes out;
  BitWriter bw(&out);
  bw.Put(0xFF, 8);
  bw.Flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0xFF);
  EXPECT_EQ(out[1], 0x00);
}

TEST(BitReaderTest, ReadsBackWhatWriterWrote) {
  Bytes out;
  BitWriter bw(&out);
  bw.Put(0b1101, 4);
  bw.Put(0x3FF, 10);
  bw.Put(0b01, 2);
  bw.Flush();
  BitReader br(out);
  EXPECT_EQ(br.Get(4), 0b1101);
  EXPECT_EQ(br.Get(10), 0x3FF);
  EXPECT_EQ(br.Get(2), 0b01);
}

TEST(BitReaderTest, UnstuffsFf00) {
  const Bytes data = {0xFF, 0x00, 0xAB};
  BitReader br(data);
  EXPECT_EQ(br.Get(8), 0xFF);
  EXPECT_EQ(br.Get(8), 0xAB);
}

TEST(BitReaderTest, StopsAtRealMarker) {
  const Bytes data = {0x12, 0xFF, 0xD9};  // EOI after one byte
  BitReader br(data);
  EXPECT_EQ(br.Get(8), 0x12);
  EXPECT_EQ(br.Get(8), -1);  // refuses to read past the marker
}

TEST(BitReaderTest, ExhaustedOnEmpty) {
  BitReader br(ByteSpan{});
  EXPECT_EQ(br.GetBit(), -1);
  EXPECT_TRUE(br.Exhausted());
}

TEST(BitReaderTest, ConsumeRestartMarkerAdvances) {
  const Bytes data = {0xFF, 0xD0, 0x80};
  BitReader br(data);
  EXPECT_TRUE(br.ConsumeRestartMarker(0));
  EXPECT_EQ(br.Get(8), 0x80);
}

TEST(BitReaderTest, RestartMarkerIndexMustMatch) {
  const Bytes data = {0xFF, 0xD3};
  BitReader br(data);
  EXPECT_FALSE(br.ConsumeRestartMarker(0));  // expects D0
  EXPECT_TRUE(br.ConsumeRestartMarker(3));
}

TEST(BitReaderTest, RestartMarkerIndexWrapsMod8) {
  const Bytes data = {0xFF, 0xD1};
  BitReader br(data);
  EXPECT_TRUE(br.ConsumeRestartMarker(9));  // 9 & 7 == 1
}

TEST(BitRoundTripTest, ManyRandomValues) {
  Rng rng(21);
  std::vector<std::pair<uint32_t, int>> values;
  Bytes out;
  BitWriter bw(&out);
  for (int i = 0; i < 1000; ++i) {
    const int count = 1 + static_cast<int>(rng.UniformU64(16));
    const uint32_t v = static_cast<uint32_t>(rng.UniformU64(1u << count));
    values.emplace_back(v, count);
    bw.Put(v, count);
  }
  bw.Flush();
  BitReader br(out);
  for (const auto& [v, count] : values) {
    EXPECT_EQ(br.Get(count), static_cast<int32_t>(v));
  }
}

TEST(BitReaderTest, BulkRefillAcrossStuffedBytes) {
  // Every other byte is a stuffed 0xFF: the SWAR bulk path must reject the
  // window and fall back to byte-wise un-stuffing without losing alignment.
  Bytes data;
  for (int i = 0; i < 64; ++i) {
    data.push_back(0xFF);
    data.push_back(0x00);
    data.push_back(static_cast<uint8_t>(i));
  }
  BitReader br(data);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(br.Get(8), 0xFF) << "pair " << i;
    EXPECT_EQ(br.Get(8), i) << "pair " << i;
  }
  EXPECT_EQ(br.Get(8), -1);
}

TEST(BitReaderTest, WideReadsSpanRefillBoundary) {
  // 24-bit reads at every offset modulo 32 exercise the refill running
  // ahead of consumption with clean (no-0xFF) windows.
  Bytes data;
  Rng rng(77);
  std::vector<uint32_t> values;
  {
    BitWriter bw(&data);
    for (int i = 0; i < 200; ++i) {
      const uint32_t v = static_cast<uint32_t>(rng.UniformU64(1u << 24));
      values.push_back(v);
      bw.Put(v, 24);
    }
    bw.Flush();
  }
  BitReader br(data);
  for (uint32_t v : values) {
    EXPECT_EQ(br.Get(24), static_cast<int32_t>(v));
  }
}

TEST(BitReaderTest, MarkerTerminatedStreamDeliversAllDataBits) {
  // 5 data bytes then EOI: the bulk path must not read through the marker,
  // and Get must return the 40 data bits then the -1 sentinel.
  const Bytes data = {0x11, 0x22, 0x33, 0x44, 0x55, 0xFF, 0xD9};
  BitReader br(data);
  EXPECT_EQ(br.Get(24), 0x112233);
  EXPECT_EQ(br.Get(16), 0x4455);
  EXPECT_EQ(br.Get(1), -1);
}

TEST(BitReaderTest, GetWidthIsChecked) {
  const Bytes data = {0x00, 0x01, 0x02, 0x03, 0x04};
  EXPECT_EQ(BitReader::kMaxGetBits, 24);
  BitReader ok(data);
  EXPECT_EQ(ok.Get(BitReader::kMaxGetBits), 0x000102);
  EXPECT_DEATH(
      {
        BitReader br(data);
        br.Get(BitReader::kMaxGetBits + 1);
      },
      "check failed");
  EXPECT_DEATH(
      {
        BitReader br(data);
        br.Get(-1);
      },
      "check failed");
}

TEST(BitReaderTest, Peek8DoesNotConsume) {
  const Bytes data = {0b10110100, 0x5A};
  BitReader br(data);
  EXPECT_EQ(br.Peek8(), 0b10110100);
  EXPECT_EQ(br.Peek8(), 0b10110100);  // still there
  br.Drop(3);
  EXPECT_EQ(br.Peek8(), 0b10100010);  // window slid by 3 bits
  EXPECT_EQ(br.Get(8), 0b10100010);
  EXPECT_EQ(br.Get(5), 0b11010);
  EXPECT_EQ(br.Peek8(), -1);  // only padding left
}

TEST(BitReaderTest, Peek8ShortTail) {
  const Bytes data = {0xC0};
  BitReader br(data);
  br.Drop(0);  // no-op allowed
  EXPECT_EQ(br.GetBit(), 1);
  EXPECT_EQ(br.Peek8(), -1);  // 7 bits left, not enough for a peek
  EXPECT_EQ(br.GetBit(), 1);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(br.GetBit(), 0);
  EXPECT_EQ(br.GetBit(), -1);
}

TEST(BitReaderTest, PositionAccountsForBufferedBytes) {
  // 8 clean bytes: the bulk refill buffers 4+ bytes ahead, but Position()
  // must report where the logical cursor is.
  const Bytes data = {0, 1, 2, 3, 4, 5, 6, 7};
  BitReader br(data);
  EXPECT_EQ(br.Position(), 0u);
  EXPECT_EQ(br.Get(8), 0);
  EXPECT_EQ(br.Position(), 1u);
  EXPECT_EQ(br.Get(4), 0);
  EXPECT_EQ(br.Position(), 2u);  // byte 1 partially consumed counts consumed
  EXPECT_EQ(br.Get(4), 1);
  EXPECT_EQ(br.Position(), 2u);
  EXPECT_EQ(br.Get(16), 0x0203);
  EXPECT_EQ(br.Position(), 4u);
}

TEST(BitReaderTest, PositionRewindsOverStuffedPairs) {
  // Stuffed pair inside a buffered window: the backward walk must step two
  // bytes for the FF00 token, not one.
  const Bytes data = {0x12, 0xFF, 0x00, 0x34, 0x56, 0x78, 0x9A, 0xBC};
  BitReader br(data);
  EXPECT_EQ(br.Get(8), 0x12);
  EXPECT_EQ(br.Position(), 1u);
  EXPECT_EQ(br.Get(8), 0xFF);
  EXPECT_EQ(br.Position(), 3u);  // past the stuffed pair
  EXPECT_EQ(br.Get(8), 0x34);
  EXPECT_EQ(br.Position(), 4u);
}

TEST(BitReaderTest, AlignToByteGivesBackBufferedBytes) {
  const Bytes data = {0xA5, 0x5A, 0xC3, 0x3C, 0x0F};
  BitReader br(data);
  EXPECT_EQ(br.Get(3), 0b101);  // triggers a bulk refill of 4 bytes
  br.AlignToByte();
  // Partial byte 0xA5 is discarded; cursor re-aligns to byte 1.
  EXPECT_EQ(br.Get(8), 0x5A);
  EXPECT_EQ(br.Get(8), 0xC3);
}

TEST(BitReaderTest, RestartMarkerAfterBufferedBits) {
  // Scan data, then RST0, then more data: ConsumeRestartMarker must
  // re-align even though the reader buffered bytes past the marker's
  // position... which it cannot here, because the marker byte stops the
  // refill; the interesting part is the partial-byte discard.
  const Bytes data = {0xAB, 0xFF, 0xD0, 0xCD};
  BitReader br(data);
  EXPECT_EQ(br.Get(4), 0xA);
  EXPECT_TRUE(br.ConsumeRestartMarker(0));
  EXPECT_EQ(br.Get(8), 0xCD);
}

TEST(BitRoundTripTest, RandomValuesWithManyFfBytes) {
  // Bias writes towards 0xFF-heavy patterns so the stream is dense with
  // stuffed pairs; reader must agree with writer bit for bit.
  Rng rng(99);
  std::vector<std::pair<uint32_t, int>> values;
  Bytes out;
  BitWriter bw(&out);
  for (int i = 0; i < 2000; ++i) {
    const int count = 1 + static_cast<int>(rng.UniformU64(16));
    uint32_t v;
    if (rng.Bernoulli(0.5)) {
      v = (1u << count) - 1;  // all ones -> 0xFF runs
    } else {
      v = static_cast<uint32_t>(rng.UniformU64(1u << count));
    }
    values.emplace_back(v, count);
    bw.Put(v, count);
  }
  bw.Flush();
  // The biased stream really must contain stuffing to test what we claim.
  size_t stuffed = 0;
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i] == 0xFF && out[i + 1] == 0x00) ++stuffed;
  }
  EXPECT_GT(stuffed, 10u);
  BitReader br(out);
  for (const auto& [v, count] : values) {
    ASSERT_EQ(br.Get(count), static_cast<int32_t>(v));
  }
}

}  // namespace
}  // namespace dlb::jpeg
