#include "codec/color.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dlb::jpeg {
namespace {

TEST(ColorTest, GrayRgbMapsToNeutralChroma) {
  Image img(2, 1, 3);
  for (int c = 0; c < 3; ++c) {
    img.Set(0, 0, c, 0);
    img.Set(1, 0, c, 255);
  }
  std::vector<uint8_t> y, cb, cr;
  RgbToYcbcr(img, &y, &cb, &cr);
  EXPECT_EQ(y[0], 0);
  EXPECT_EQ(y[1], 255);
  EXPECT_EQ(cb[0], 128);
  EXPECT_EQ(cr[0], 128);
  EXPECT_EQ(cb[1], 128);
  EXPECT_EQ(cr[1], 128);
}

TEST(ColorTest, PrimariesHaveExpectedLuma) {
  Image img(3, 1, 3);
  img.Set(0, 0, 0, 255);  // red
  img.Set(1, 0, 1, 255);  // green
  img.Set(2, 0, 2, 255);  // blue
  std::vector<uint8_t> y, cb, cr;
  RgbToYcbcr(img, &y, &cb, &cr);
  EXPECT_NEAR(y[0], 76, 1);   // 0.299*255
  EXPECT_NEAR(y[1], 150, 1);  // 0.587*255
  EXPECT_NEAR(y[2], 29, 1);   // 0.114*255
}

TEST(ColorTest, RoundTripWithinTolerance) {
  Rng rng(31);
  Image img(16, 16, 3);
  for (size_t i = 0; i < img.SizeBytes(); ++i) {
    img.Data()[i] = static_cast<uint8_t>(rng.UniformU64(256));
  }
  std::vector<uint8_t> y, cb, cr;
  RgbToYcbcr(img, &y, &cb, &cr);
  for (int yy = 0; yy < 16; ++yy) {
    for (int xx = 0; xx < 16; ++xx) {
      const size_t i = static_cast<size_t>(yy) * 16 + xx;
      uint8_t r, g, b;
      YcbcrToRgbPixel(y[i], cb[i], cr[i], &r, &g, &b);
      EXPECT_NEAR(r, img.At(xx, yy, 0), 2);
      EXPECT_NEAR(g, img.At(xx, yy, 1), 2);
      EXPECT_NEAR(b, img.At(xx, yy, 2), 2);
    }
  }
}

TEST(ColorTest, Downsample2x2Averages) {
  std::vector<uint8_t> plane = {10, 20, 30, 40};  // 2x2
  auto out = Downsample2x2(plane, 2, 2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 25);
}

TEST(ColorTest, Downsample2x2OddDimensionsReplicateEdge) {
  // 3x1 plane: last column pairs with itself.
  std::vector<uint8_t> plane = {10, 20, 30};
  auto out = Downsample2x2(plane, 3, 1);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 15);  // (10+20+10+20)/4
  EXPECT_EQ(out[1], 30);  // (30+30+30+30)/4
}

TEST(ColorTest, DownsampleHalvesDimensions) {
  std::vector<uint8_t> plane(500 * 374, 77);
  auto out = Downsample2x2(plane, 500, 374);
  EXPECT_EQ(out.size(), 250u * 187u);
  for (uint8_t v : out) ASSERT_EQ(v, 77);
}

}  // namespace
}  // namespace dlb::jpeg
