// Stage-separability tests: running the four decoder stages by hand must be
// identical to the one-shot Decode(). The FPGA simulator's functional mode
// depends on this property.
#include <gtest/gtest.h>

#include "codec/jpeg_decoder.h"
#include "codec/jpeg_encoder.h"

namespace dlb::jpeg {
namespace {

Image Scene(int w, int h) {
  Image img(w, h, 3);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.Set(x, y, 0, static_cast<uint8_t>((x * 5) % 256));
      img.Set(x, y, 1, static_cast<uint8_t>((y * 5) % 256));
      img.Set(x, y, 2, static_cast<uint8_t>((x + y) % 256));
    }
  }
  return img;
}

TEST(JpegStageTest, StagesComposeToDecode) {
  auto encoded = Encode(Scene(100, 75));
  ASSERT_TRUE(encoded.ok());

  auto header = ParseHeaders(encoded.value());
  ASSERT_TRUE(header.ok());
  auto coeffs = EntropyDecode(header.value(), encoded.value());
  ASSERT_TRUE(coeffs.ok());
  auto planes = InverseTransform(header.value(), coeffs.value());
  ASSERT_TRUE(planes.ok());
  auto staged = ColorReconstruct(header.value(), planes.value());
  ASSERT_TRUE(staged.ok());

  auto oneshot = Decode(encoded.value());
  ASSERT_TRUE(oneshot.ok());
  EXPECT_TRUE(staged.value() == oneshot.value());
}

TEST(JpegStageTest, HeaderGeometryFor420) {
  EncodeOptions opts;
  opts.subsampling = Subsampling::k420;
  auto encoded = Encode(Scene(100, 75), opts);
  ASSERT_TRUE(encoded.ok());
  auto header = ParseHeaders(encoded.value());
  ASSERT_TRUE(header.ok());
  const JpegHeader& h = header.value();
  EXPECT_EQ(h.width, 100);
  EXPECT_EQ(h.height, 75);
  ASSERT_EQ(h.components.size(), 3u);
  EXPECT_EQ(h.max_h, 2);
  EXPECT_EQ(h.max_v, 2);
  EXPECT_EQ(h.mcus_w, 7);  // ceil(100/16)
  EXPECT_EQ(h.mcus_h, 5);  // ceil(75/16)
  EXPECT_EQ(h.components[0].blocks_w, 14);
  EXPECT_EQ(h.components[1].blocks_w, 7);
  EXPECT_EQ(h.components[0].plane_w, 112);
}

TEST(JpegStageTest, HeaderGeometryFor444) {
  EncodeOptions opts;
  opts.subsampling = Subsampling::k444;
  auto encoded = Encode(Scene(17, 9), opts);
  ASSERT_TRUE(encoded.ok());
  auto header = ParseHeaders(encoded.value());
  ASSERT_TRUE(header.ok());
  const JpegHeader& h = header.value();
  EXPECT_EQ(h.mcus_w, 3);  // ceil(17/8)
  EXPECT_EQ(h.mcus_h, 2);
  for (const auto& c : h.components) {
    EXPECT_EQ(c.h_samp, 1);
    EXPECT_EQ(c.v_samp, 1);
  }
}

TEST(JpegStageTest, HeaderGeometryFor422) {
  EncodeOptions opts;
  opts.subsampling = Subsampling::k422;
  auto encoded = Encode(Scene(100, 75), opts);
  ASSERT_TRUE(encoded.ok());
  auto header = ParseHeaders(encoded.value());
  ASSERT_TRUE(header.ok());
  const JpegHeader& h = header.value();
  EXPECT_EQ(h.max_h, 2);
  EXPECT_EQ(h.max_v, 1);
  EXPECT_EQ(h.mcus_w, 7);   // ceil(100/16)
  EXPECT_EQ(h.mcus_h, 10);  // ceil(75/8)
  EXPECT_EQ(h.components[0].h_samp, 2);
  EXPECT_EQ(h.components[0].v_samp, 1);
  EXPECT_EQ(h.components[1].h_samp, 1);
}

TEST(JpegStageTest, CoeffBlockCountsMatchGeometry) {
  auto encoded = Encode(Scene(64, 48));
  ASSERT_TRUE(encoded.ok());
  auto header = ParseHeaders(encoded.value());
  ASSERT_TRUE(header.ok());
  auto coeffs = EntropyDecode(header.value(), encoded.value());
  ASSERT_TRUE(coeffs.ok());
  for (size_t ci = 0; ci < header.value().components.size(); ++ci) {
    const auto& c = header.value().components[ci];
    EXPECT_EQ(coeffs.value().coeffs[ci].size(),
              static_cast<size_t>(c.blocks_w) * c.blocks_h * 64);
  }
}

TEST(JpegStageTest, RestartIntervalParsed) {
  EncodeOptions opts;
  opts.restart_interval = 4;
  auto encoded = Encode(Scene(64, 48), opts);
  ASSERT_TRUE(encoded.ok());
  auto header = ParseHeaders(encoded.value());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().restart_interval, 4);
}

TEST(JpegStageTest, QuantTablesParsedInNaturalOrder) {
  auto encoded = Encode(Scene(16, 16), EncodeOptions{.quality = 50});
  ASSERT_TRUE(encoded.ok());
  auto header = ParseHeaders(encoded.value());
  ASSERT_TRUE(header.ok());
  // Quality 50 keeps Annex K tables verbatim (natural order in memory).
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(header.value().quant[0][i], kStdLumaQuant[i]);
    EXPECT_EQ(header.value().quant[1][i], kStdChromaQuant[i]);
  }
}

}  // namespace
}  // namespace dlb::jpeg
