// Golden decode regression tests for the fast kernel path.
//
// Contract under test (see DESIGN.md "Fast kernels & SIMD dispatch"):
//   * kFast and kScalar produce byte-identical images — the vector arms are
//     exact twins of the integer scalar kernels, on every build arm
//     (DLB_SIMD=ON and OFF).
//   * Entropy decoding emits identical coefficients in all three modes — the
//     Huffman LUT is an exact accelerator, not an approximation.
//   * kFast pixels stay within ±1 of kReference (the seed float-basis iDCT
//     oracle, also the FPGA-sim functional model) on every channel.
//
// Fixtures are encoded in-test with our own encoder: baseline Huffman,
// 4:4:4 / 4:2:2 / 4:2:0, grayscale, restart markers, odd (non-MCU-aligned)
// sizes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "codec/jpeg_decoder.h"
#include "codec/jpeg_encoder.h"
#include "common/rng.h"
#include "common/simd.h"
#include "image/image.h"

namespace dlb::jpeg {
namespace {

using simd::KernelMode;
using simd::ScopedKernelMode;

Image NoisyScene(int w, int h, int channels, uint64_t seed) {
  // Gradient base plus full-range noise: exercises long Huffman codes and
  // dense AC blocks, the paths most likely to diverge between kernel arms.
  Rng rng(seed);
  Image img(w, h, channels);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < channels; ++c) {
        const int base = (x * 3 + y * 2 + c * 60) % 256;
        const int noise = static_cast<int>(rng.UniformInt(-90, 90));
        int v = base + noise;
        v = v < 0 ? 0 : (v > 255 ? 255 : v);
        img.Set(x, y, c, static_cast<uint8_t>(v));
      }
    }
  }
  return img;
}

struct GoldenParam {
  int width;
  int height;
  int channels;
  int quality;
  Subsampling subsampling;
  int restart_interval;
};

std::string ParamName(const ::testing::TestParamInfo<GoldenParam>& info) {
  const GoldenParam& p = info.param;
  const char* sub = p.subsampling == Subsampling::k420
                        ? "s420"
                        : (p.subsampling == Subsampling::k422 ? "s422" : "s444");
  return std::to_string(p.width) + "x" + std::to_string(p.height) + "c" +
         std::to_string(p.channels) + "q" + std::to_string(p.quality) + sub +
         "r" + std::to_string(p.restart_interval);
}

class GoldenDecodeTest : public ::testing::TestWithParam<GoldenParam> {
 protected:
  Bytes Fixture() {
    const GoldenParam& p = GetParam();
    Image src = NoisyScene(p.width, p.height, p.channels, 0xD1B0057E);
    EncodeOptions opts;
    opts.quality = p.quality;
    opts.subsampling = p.subsampling;
    opts.restart_interval = p.restart_interval;
    auto encoded = Encode(src, opts);
    EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
    return encoded.ok() ? encoded.value() : Bytes{};
  }
};

TEST_P(GoldenDecodeTest, FastAndScalarArmsAreByteIdentical) {
  const Bytes jpeg = Fixture();
  ASSERT_FALSE(jpeg.empty());
  Result<Image> fast = [&] {
    ScopedKernelMode mode(KernelMode::kFast);
    return Decode(jpeg);
  }();
  Result<Image> scalar = [&] {
    ScopedKernelMode mode(KernelMode::kScalar);
    return Decode(jpeg);
  }();
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  EXPECT_TRUE(fast.value() == scalar.value())
      << "fast/scalar divergence, kernels: " << simd::KernelInfo();
}

TEST_P(GoldenDecodeTest, CoefficientsIdenticalInAllModes) {
  const Bytes jpeg = Fixture();
  ASSERT_FALSE(jpeg.empty());
  auto header = ParseHeaders(jpeg);
  ASSERT_TRUE(header.ok()) << header.status().ToString();

  std::vector<CoeffData> runs;
  for (KernelMode mode :
       {KernelMode::kFast, KernelMode::kScalar, KernelMode::kReference}) {
    ScopedKernelMode scoped(mode);
    auto coeffs = EntropyDecode(header.value(), jpeg);
    ASSERT_TRUE(coeffs.ok()) << coeffs.status().ToString();
    runs.push_back(std::move(coeffs.value()));
  }
  ASSERT_EQ(runs.size(), 3u);
  for (size_t mode = 1; mode < runs.size(); ++mode) {
    ASSERT_EQ(runs[mode].coeffs.size(), runs[0].coeffs.size());
    for (size_t comp = 0; comp < runs[0].coeffs.size(); ++comp) {
      EXPECT_EQ(runs[mode].coeffs[comp], runs[0].coeffs[comp])
          << "mode " << static_cast<int>(mode) << " component " << comp;
    }
  }
}

TEST_P(GoldenDecodeTest, FastTracksReferenceWithinOneLsb) {
  const Bytes jpeg = Fixture();
  ASSERT_FALSE(jpeg.empty());
  Result<Image> fast = [&] {
    ScopedKernelMode mode(KernelMode::kFast);
    return Decode(jpeg);
  }();
  Result<Image> reference = [&] {
    ScopedKernelMode mode(KernelMode::kReference);
    return Decode(jpeg);
  }();
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const Image& a = fast.value();
  const Image& b = reference.value();
  ASSERT_EQ(a.Width(), b.Width());
  ASSERT_EQ(a.Height(), b.Height());
  ASSERT_EQ(a.Channels(), b.Channels());
  // The integer iDCT may differ from the float oracle by one rounding step;
  // the colour convert is integer-exact, so ±1 per sample going in can become
  // at most ±2 per channel coming out of the BT.601 mix.
  int worst = 0;
  for (size_t i = 0; i < a.SizeBytes(); ++i) {
    const int d = std::abs(static_cast<int>(a.Data()[i]) -
                           static_cast<int>(b.Data()[i]));
    worst = d > worst ? d : worst;
  }
  EXPECT_LE(worst, 2) << "fast vs float-reference drift too large";
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, GoldenDecodeTest,
    ::testing::Values(
        GoldenParam{64, 64, 3, 85, Subsampling::k444, 0},
        GoldenParam{64, 64, 3, 85, Subsampling::k422, 0},
        GoldenParam{64, 64, 3, 85, Subsampling::k420, 0},
        GoldenParam{65, 63, 3, 90, Subsampling::k420, 0},
        GoldenParam{65, 63, 3, 75, Subsampling::k422, 0},
        GoldenParam{17, 9, 3, 85, Subsampling::k420, 3},
        GoldenParam{64, 48, 3, 85, Subsampling::k444, 2},
        GoldenParam{128, 96, 3, 50, Subsampling::k420, 7},
        GoldenParam{96, 80, 1, 85, Subsampling::k444, 0},
        GoldenParam{28, 28, 1, 95, Subsampling::k444, 1},
        GoldenParam{500, 375, 3, 85, Subsampling::k420, 0}),
    ParamName);

TEST(KernelModeEnvTest, ScopedOverrideRestores) {
  const KernelMode before = simd::GetKernelMode();
  {
    ScopedKernelMode scoped(KernelMode::kReference);
    EXPECT_EQ(simd::GetKernelMode(), KernelMode::kReference);
    {
      ScopedKernelMode nested(KernelMode::kScalar);
      EXPECT_EQ(simd::GetKernelMode(), KernelMode::kScalar);
    }
    EXPECT_EQ(simd::GetKernelMode(), KernelMode::kReference);
  }
  EXPECT_EQ(simd::GetKernelMode(), before);
}

TEST(KernelModeEnvTest, CompiledIsaIsStable) {
  const char* isa = simd::CompiledIsa();
  ASSERT_NE(isa, nullptr);
  const std::string s(isa);
  EXPECT_TRUE(s == "avx2" || s == "sse2" || s == "neon" || s == "scalar") << s;
#ifdef DLB_DISABLE_SIMD
  EXPECT_EQ(s, "scalar");
  EXPECT_TRUE(simd::SimdDisabledAtBuild());
#endif
}

}  // namespace
}  // namespace dlb::jpeg
