#include "codec/dct.h"

#include <gtest/gtest.h>

#include <cmath>

#include "codec/jpeg_common.h"
#include "common/rng.h"

namespace dlb::jpeg {
namespace {

TEST(DctTest, DcOnlyBlockIsConstant) {
  float coeffs[64] = {0};
  coeffs[0] = 8.0f * 16.0f;  // DC of 16 after the 1/8 normalisation pair
  uint8_t out[64];
  InverseDct8x8(coeffs, out);
  // All samples equal: 128 + 16 = 144.
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], 144);
}

TEST(DctTest, ZeroBlockIsMidGray) {
  float coeffs[64] = {0};
  uint8_t out[64];
  InverseDct8x8(coeffs, out);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], 128);
}

TEST(DctTest, ForwardOfConstantHasOnlyDc) {
  float in[64];
  for (auto& v : in) v = 42.0f;
  float out[64];
  ForwardDct8x8(in, out);
  EXPECT_NEAR(out[0], 42.0f * 8.0f, 1e-3);
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(out[i], 0.0f, 1e-3);
}

TEST(DctTest, ForwardInverseRoundTrip) {
  Rng rng(4);
  float in[64];
  for (auto& v : in) {
    v = static_cast<float>(rng.UniformInt(0, 255)) - 128.0f;
  }
  float coeffs[64];
  ForwardDct8x8(in, coeffs);
  uint8_t out[64];
  InverseDct8x8(coeffs, out);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(static_cast<float>(out[i]), in[i] + 128.0f, 1.0f);
  }
}

TEST(DctTest, ParsevalEnergyPreserved) {
  Rng rng(8);
  float in[64], coeffs[64];
  for (auto& v : in) v = static_cast<float>(rng.UniformInt(-128, 127));
  ForwardDct8x8(in, coeffs);
  double e_in = 0, e_out = 0;
  for (int i = 0; i < 64; ++i) {
    e_in += in[i] * in[i];
    e_out += coeffs[i] * coeffs[i];
  }
  EXPECT_NEAR(e_out / e_in, 1.0, 1e-3);  // orthonormal transform
}

TEST(DctTest, InverseClampsRange) {
  float coeffs[64] = {0};
  coeffs[0] = 8000.0f;  // way above representable range
  uint8_t out[64];
  InverseDct8x8(coeffs, out);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], 255);
  coeffs[0] = -8000.0f;
  InverseDct8x8(coeffs, out);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], 0);
}

TEST(DequantizeTest, AppliesTableAndDeZigZags) {
  int16_t zz[64] = {0};
  zz[0] = 3;   // DC
  zz[1] = -2;  // first AC in zig-zag order -> natural position 1
  zz[2] = 5;   // second -> natural position 8
  uint16_t quant[64];
  for (int i = 0; i < 64; ++i) quant[i] = static_cast<uint16_t>(i + 1);
  float out[64];
  DequantizeZigZag(zz, quant, out);
  EXPECT_FLOAT_EQ(out[0], 3.0f * 1);
  EXPECT_FLOAT_EQ(out[1], -2.0f * 2);
  EXPECT_FLOAT_EQ(out[8], 5.0f * 9);
  EXPECT_FLOAT_EQ(out[2], 0.0f);
}

TEST(DctAanVsBasisTest, InverseMatchesBasisWithinOneLsb) {
  // The AAN-factored float iDCT and the O(n^4) basis matmul compute the same
  // transform; after rounding to uint8 they may straddle a rounding boundary
  // by at most one level.
  Rng rng(31);
  float coeffs[64];
  uint8_t aan[64], basis[64];
  for (int iter = 0; iter < 200; ++iter) {
    for (auto& v : coeffs) {
      v = static_cast<float>(rng.UniformInt(-1800, 1800));
    }
    InverseDct8x8(coeffs, aan);
    InverseDct8x8Basis(coeffs, basis);
    for (int i = 0; i < 64; ++i) {
      EXPECT_NEAR(static_cast<int>(aan[i]), static_cast<int>(basis[i]), 1)
          << "iter " << iter << " sample " << i;
    }
  }
}

TEST(DctAanVsBasisTest, ForwardMatchesBasisClosely) {
  Rng rng(32);
  float in[64], aan[64], basis[64];
  for (int iter = 0; iter < 200; ++iter) {
    for (auto& v : in) {
      v = static_cast<float>(rng.UniformInt(0, 255)) - 128.0f;
    }
    ForwardDct8x8(in, aan);
    ForwardDct8x8Basis(in, basis);
    for (int i = 0; i < 64; ++i) {
      // Both are float; agreement is to float rounding noise, far below the
      // quantiser step the encoder divides by next.
      EXPECT_NEAR(aan[i], basis[i], 0.01f) << "iter " << iter << " at " << i;
    }
  }
}

TEST(ZigZagTest, IsAPermutation) {
  bool seen[64] = {false};
  for (int i = 0; i < 64; ++i) {
    ASSERT_LT(kZigZag[i], 64);
    EXPECT_FALSE(seen[kZigZag[i]]);
    seen[kZigZag[i]] = true;
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(kZigZagInv[kZigZag[i]], i);
  }
}

TEST(QuantScaleTest, Quality50IsBaseTable) {
  auto t = ScaleQuantTable(kStdLumaQuant, 50);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(t[i], kStdLumaQuant[i]);
}

TEST(QuantScaleTest, Quality100IsAllOnes) {
  auto t = ScaleQuantTable(kStdLumaQuant, 100);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(t[i], 1);
}

TEST(QuantScaleTest, LowerQualityCoarser) {
  auto q20 = ScaleQuantTable(kStdLumaQuant, 20);
  auto q80 = ScaleQuantTable(kStdLumaQuant, 80);
  for (int i = 0; i < 64; ++i) EXPECT_GE(q20[i], q80[i]);
}

TEST(QuantScaleTest, OutOfRangeQualityClamped) {
  auto lo = ScaleQuantTable(kStdLumaQuant, -5);
  auto q1 = ScaleQuantTable(kStdLumaQuant, 1);
  auto hi = ScaleQuantTable(kStdLumaQuant, 500);
  auto q100 = ScaleQuantTable(kStdLumaQuant, 100);
  EXPECT_EQ(lo, q1);
  EXPECT_EQ(hi, q100);
}

}  // namespace
}  // namespace dlb::jpeg
