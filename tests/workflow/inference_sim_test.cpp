// Pins the inference DES to the paper's qualitative Fig. 7/8/9 results.
#include "workflow/inference_sim.h"

#include <gtest/gtest.h>

namespace dlb::workflow {
namespace {

InferConfig Base(InferBackend backend, const gpu::DlModel* model, int batch) {
  InferConfig config;
  config.backend = backend;
  config.model = model;
  config.batch_size = batch;
  config.sim_seconds = 10.0;
  return config;
}

TEST(InferenceSimTest, ThroughputGrowsWithBatchSize) {
  for (InferBackend backend : {InferBackend::kCpu, InferBackend::kNvjpeg,
                               InferBackend::kDlbooster}) {
    const double tp1 =
        SimulateInference(Base(backend, &gpu::GoogLeNet(), 1)).throughput;
    const double tp16 =
        SimulateInference(Base(backend, &gpu::GoogLeNet(), 16)).throughput;
    EXPECT_GT(tp16, tp1 * 1.5) << InferBackendName(backend);
  }
}

TEST(InferenceSimTest, DlboosterWinsAtLargeBatch) {
  const double dlb =
      SimulateInference(Base(InferBackend::kDlbooster, &gpu::GoogLeNet(), 32))
          .throughput;
  const double cpu =
      SimulateInference(Base(InferBackend::kCpu, &gpu::GoogLeNet(), 32))
          .throughput;
  const double nvj =
      SimulateInference(Base(InferBackend::kNvjpeg, &gpu::GoogLeNet(), 32))
          .throughput;
  // Fig. 7: DLBooster 1.2x-2.4x over the baselines; nvJPEG is the lowest.
  EXPECT_GT(dlb, 1.1 * cpu);
  EXPECT_GT(dlb, 1.2 * nvj);
  EXPECT_LT(nvj, cpu);
}

TEST(InferenceSimTest, DlboosterSaturatesNearDecoderBound) {
  const double tp16 =
      SimulateInference(Base(InferBackend::kDlbooster, &gpu::GoogLeNet(), 16))
          .throughput;
  const double tp32 =
      SimulateInference(Base(InferBackend::kDlbooster, &gpu::GoogLeNet(), 32))
          .throughput;
  // Fig. 7(a): beyond batch 16 the single decoder pipeline is the bound.
  EXPECT_LT(tp32, tp16 * 1.15);
  EXPECT_NEAR(tp32, 2400.0, 500.0);
}

TEST(InferenceSimTest, NvjpegStealsGpuFromTheModel) {
  auto nvj = SimulateInference(Base(InferBackend::kNvjpeg, &gpu::GoogLeNet(), 32));
  auto dlb =
      SimulateInference(Base(InferBackend::kDlbooster, &gpu::GoogLeNet(), 32));
  // Decode work inflates nvJPEG's GPU utilisation yet lowers throughput.
  EXPECT_GT(nvj.gpu_compute_util, 0.85);
  EXPECT_LT(nvj.throughput, dlb.throughput);
}

TEST(InferenceSimTest, BatchOneLatenciesMatchFig8Ordering) {
  const double dlb =
      SimulateInference(Base(InferBackend::kDlbooster, &gpu::GoogLeNet(), 1))
          .latency_ms_mean;
  const double nvj =
      SimulateInference(Base(InferBackend::kNvjpeg, &gpu::GoogLeNet(), 1))
          .latency_ms_mean;
  const double cpu =
      SimulateInference(Base(InferBackend::kCpu, &gpu::GoogLeNet(), 1))
          .latency_ms_mean;
  // Fig. 8: 1.2 ms / 1.8 ms / 3.4 ms ordering, and roughly those values.
  EXPECT_LT(dlb, nvj);
  EXPECT_LT(nvj, cpu);
  EXPECT_NEAR(dlb, 1.2, 0.8);
  EXPECT_NEAR(cpu, 3.4, 1.8);
}

TEST(InferenceSimTest, LatencyGrowsWithBatchSize) {
  for (InferBackend backend : {InferBackend::kCpu, InferBackend::kDlbooster}) {
    const double l1 = SimulateInference(Base(backend, &gpu::Vgg16(), 1))
                          .latency_ms_mean;
    const double l32 = SimulateInference(Base(backend, &gpu::Vgg16(), 32))
                           .latency_ms_mean;
    EXPECT_GT(l32, l1 * 3) << InferBackendName(backend);
  }
}

TEST(InferenceSimTest, CpuCostOrderingMatchesFig9) {
  auto cpu = SimulateInference(Base(InferBackend::kCpu, &gpu::GoogLeNet(), 32));
  auto nvj =
      SimulateInference(Base(InferBackend::kNvjpeg, &gpu::GoogLeNet(), 32));
  auto dlb =
      SimulateInference(Base(InferBackend::kDlbooster, &gpu::GoogLeNet(), 32));
  // CPU-based burns 7-14 cores; nvJPEG ~1.5; DLBooster ~0.5 (+launch).
  EXPECT_GT(cpu.cpu_cores, 6.0);
  EXPECT_LT(dlb.cpu_cores, nvj.cpu_cores);
  EXPECT_LT(nvj.cpu_cores, cpu.cpu_cores * 0.5);
}

TEST(InferenceSimTest, TwoPipelinesLiftTheResNet50Bound) {
  InferConfig one = Base(InferBackend::kDlbooster, &gpu::ResNet50(), 64);
  one.num_gpus = 2;
  one.fpga_pipelines = 1;
  InferConfig two = one;
  two.fpga_pipelines = 2;
  const double tp1 = SimulateInference(one).throughput;
  const double tp2 = SimulateInference(two).throughput;
  // §5.3: plugging more FPGA decoders overcomes the decoder bound.
  EXPECT_GT(tp2, tp1 * 1.3);
  EXPECT_NEAR(tp2, 3900.0, 900.0);
}

TEST(InferenceSimTest, VggIsGpuBoundSoBackendsConverge) {
  const double dlb =
      SimulateInference(Base(InferBackend::kDlbooster, &gpu::Vgg16(), 32))
          .throughput;
  const double cpu =
      SimulateInference(Base(InferBackend::kCpu, &gpu::Vgg16(), 32))
          .throughput;
  // VGG16's heavy compute narrows the gap (Fig. 7(b)).
  EXPECT_LT(dlb / cpu, 1.6);
  EXPECT_GE(dlb / cpu, 1.0);
}

TEST(InferenceSimTest, DeterministicAcrossRuns) {
  InferConfig config = Base(InferBackend::kNvjpeg, &gpu::ResNet50(), 8);
  auto a = SimulateInference(config);
  auto b = SimulateInference(config);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_DOUBLE_EQ(a.latency_ms_mean, b.latency_ms_mean);
}

}  // namespace
}  // namespace dlb::workflow
