// End-to-end learning test: the runtime pipeline's decoded batches carry
// enough signal that a linear model separates the synthetic classes —
// closing the loop from "bytes decoded" to "model learns".
#include "workflow/toy_trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "backends/synthetic_backend.h"
#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"

namespace dlb::workflow {
namespace {

TEST(ToyClassifierTest, LossDecreasesOnPipelineBatches) {
  DatasetSpec spec = ImageNetLikeSpec(96);
  spec.width = 96;
  spec.height = 96;
  spec.num_classes = 4;  // few classes => separable by pooled intensity
  spec.dim_jitter = 0;
  auto dataset = GenerateDataset(spec);
  ASSERT_TRUE(dataset.ok());

  core::PipelineConfig config;
  config.backend = "dlbooster";
  config.options.batch_size = 16;
  config.options.resize_w = 48;
  config.options.resize_h = 48;
  config.options.shuffle = false;
  config.max_images = 96 * 6;  // six epochs
  config.cache_epochs = true;
  auto pipeline = core::PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&dataset.value().manifest,
                                   dataset.value().store.get())
                      .Build();
  ASSERT_TRUE(pipeline.ok());

  ToyClassifier model(/*features=*/36, /*classes=*/4);
  double first_epoch_loss = 0, last_epoch_loss = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    double loss = 0;
    int batches = 0;
    for (int b = 0; b < 6; ++b) {
      auto batch = pipeline.value()->NextBatch();
      if (!batch.ok()) break;
      loss += model.Step(*batch.value(), 0.05f);
      ++batches;
    }
    ASSERT_GT(batches, 0) << "epoch " << epoch;
    if (epoch == 0) first_epoch_loss = loss / batches;
    last_epoch_loss = loss / batches;
  }
  // Training on the label-correlated scenes must reduce the loss.
  EXPECT_LT(last_epoch_loss, first_epoch_loss * 0.9);
  EXPECT_LT(last_epoch_loss, std::log(4.0));  // better than chance
}

TEST(ToyClassifierTest, AccuracyAboveChanceAfterTraining) {
  // Constant synthetic batch: labels 0..9 repeating, identical pixels,
  // so accuracy cannot beat chance — but it must not crash or return junk.
  BackendOptions options;
  options.batch_size = 20;
  options.resize_w = 12;
  options.resize_h = 12;
  SyntheticBackend backend(options);
  ASSERT_TRUE(backend.Start().ok());
  auto batch = backend.NextBatch(0);
  ASSERT_TRUE(batch.ok());
  ToyClassifier model(16, 10);
  const double acc = model.Accuracy(*batch.value());
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
  EXPECT_GE(model.Step(*batch.value(), 0.1f), 0.0);
}

TEST(ToyClassifierTest, PredictIsStable) {
  BackendOptions options;
  options.batch_size = 1;
  options.resize_w = 8;
  options.resize_h = 8;
  SyntheticBackend backend(options);
  ASSERT_TRUE(backend.Start().ok());
  auto batch = backend.NextBatch(0);
  ASSERT_TRUE(batch.ok());
  ToyClassifier model(16, 3);
  const ImageRef ref = batch.value()->At(0);
  EXPECT_EQ(model.Predict(ref), model.Predict(ref));
}

}  // namespace
}  // namespace dlb::workflow
