// Property-style sweeps over the full (model x backend x GPUs/batch)
// matrix: invariants that must hold at EVERY point, not just the paper's
// configurations.
#include <gtest/gtest.h>

#include <tuple>

#include "workflow/inference_sim.h"
#include "workflow/training_sim.h"

namespace dlb::workflow {
namespace {

// ---------------- training sweep -------------------------------------------

using TrainPoint = std::tuple<const gpu::DlModel*, TrainBackend, int>;

class TrainingSweepTest : public ::testing::TestWithParam<TrainPoint> {};

TEST_P(TrainingSweepTest, InvariantsHold) {
  const auto& [model, backend, gpus] = GetParam();
  TrainConfig config;
  config.model = model;
  config.backend = backend;
  config.num_gpus = gpus;
  config.sim_seconds = 6.0;
  config.dataset_fits_memory = model == &gpu::LeNet5();
  const TrainResult r = SimulateTraining(config);

  // Throughput is positive and never exceeds the synthetic boundary.
  TrainConfig ideal = config;
  ideal.backend = TrainBackend::kSynthetic;
  const double boundary = SimulateTraining(ideal).throughput;
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_LE(r.throughput, boundary * 1.02);

  // CPU cost is positive and bounded by the socket.
  EXPECT_GT(r.cpu_cores, 0.0);
  EXPECT_LE(r.cpu_cores, cal::kCpuTotalCores);

  // The engine can never be more than fully utilised.
  EXPECT_LE(r.gpu_compute_util, 1.001);

  // Determinism at every sweep point.
  const TrainResult again = SimulateTraining(config);
  EXPECT_DOUBLE_EQ(r.throughput, again.throughput);
}

std::string TrainPointName(const ::testing::TestParamInfo<TrainPoint>& info) {
  const auto& [model, backend, gpus] = info.param;
  return model->name + "_" + TrainBackendName(backend) + "_" +
         std::to_string(gpus) + "gpu";
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TrainingSweepTest,
    ::testing::Combine(::testing::Values(&gpu::LeNet5(), &gpu::AlexNet(),
                                         &gpu::ResNet18()),
                       ::testing::Values(TrainBackend::kCpu,
                                         TrainBackend::kLmdb,
                                         TrainBackend::kDlbooster),
                       ::testing::Values(1, 2)),
    TrainPointName);

// ---------------- inference sweep ------------------------------------------

using InferPoint = std::tuple<const gpu::DlModel*, InferBackend, int>;

class InferenceSweepTest : public ::testing::TestWithParam<InferPoint> {};

TEST_P(InferenceSweepTest, InvariantsHold) {
  const auto& [model, backend, batch] = GetParam();
  InferConfig config;
  config.model = model;
  config.backend = backend;
  config.batch_size = batch;
  config.sim_seconds = 6.0;
  const InferResult r = SimulateInference(config);

  EXPECT_GT(r.throughput, 0.0);
  // Never above what the GPU could do with free preprocessing.
  const double gpu_bound =
      batch / model->InferBatchSeconds(batch) * config.num_gpus;
  EXPECT_LE(r.throughput, gpu_bound * 1.02);

  // Latency is at least the pure batch-inference time, and consistent
  // with throughput (Little's law, window = 2*batch*gpus).
  EXPECT_GE(r.latency_ms_p50 * 1.05,
            model->InferBatchSeconds(batch) * 1e3 * 0.5);
  EXPECT_GT(r.latency_ms_p99 + 0.001, r.latency_ms_p50);

  EXPECT_GT(r.cpu_cores, 0.0);
  EXPECT_LE(r.gpu_compute_util, 1.001);
}

std::string InferPointName(const ::testing::TestParamInfo<InferPoint>& info) {
  const auto& [model, backend, batch] = info.param;
  return model->name + "_" + InferBackendName(backend) + "_bs" +
         std::to_string(batch);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, InferenceSweepTest,
    ::testing::Combine(::testing::Values(&gpu::GoogLeNet(), &gpu::Vgg16(),
                                         &gpu::ResNet50()),
                       ::testing::Values(InferBackend::kCpu,
                                         InferBackend::kNvjpeg,
                                         InferBackend::kDlbooster),
                       ::testing::Values(1, 8, 32)),
    InferPointName);

// DLBooster dominance holds across the model zoo at serving batch sizes.
class DominanceTest
    : public ::testing::TestWithParam<const gpu::DlModel*> {};

TEST_P(DominanceTest, DlboosterNeverLosesAtBatch16) {
  InferConfig config;
  config.model = GetParam();
  config.batch_size = 16;
  config.sim_seconds = 6.0;
  config.backend = InferBackend::kDlbooster;
  const double dlb = SimulateInference(config).throughput;
  config.backend = InferBackend::kNvjpeg;
  const double nvj = SimulateInference(config).throughput;
  config.backend = InferBackend::kCpu;
  const double cpu = SimulateInference(config).throughput;
  EXPECT_GE(dlb, nvj * 0.99) << GetParam()->name;
  EXPECT_GE(dlb, cpu * 0.99) << GetParam()->name;
}

INSTANTIATE_TEST_SUITE_P(Zoo, DominanceTest,
                         ::testing::Values(&gpu::GoogLeNet(), &gpu::Vgg16(),
                                           &gpu::ResNet50()),
                         [](const auto& info) { return info.param->name; });

}  // namespace
}  // namespace dlb::workflow
