// These tests pin the training DES to the paper's qualitative results:
// who wins, by roughly what factor, and what each backend costs in cores.
#include "workflow/training_sim.h"

#include <gtest/gtest.h>

namespace dlb::workflow {
namespace {

TrainConfig Base(TrainBackend backend, const gpu::DlModel* model,
                 int num_gpus) {
  TrainConfig config;
  config.backend = backend;
  config.model = model;
  config.num_gpus = num_gpus;
  config.sim_seconds = 10.0;
  return config;
}

TEST(TrainingSimTest, SyntheticHitsTheBoundary) {
  auto r = SimulateTraining(Base(TrainBackend::kSynthetic, &gpu::AlexNet(), 1));
  EXPECT_NEAR(r.throughput, 2496.0, 2496.0 * 0.05);
}

TEST(TrainingSimTest, SyntheticTwoGpuScalingMatchesFig2) {
  auto r = SimulateTraining(Base(TrainBackend::kSynthetic, &gpu::AlexNet(), 2));
  EXPECT_NEAR(r.throughput, 4652.0, 4652.0 * 0.05);
}

TEST(TrainingSimTest, DlboosterApproachesTheBoundary) {
  auto one = SimulateTraining(Base(TrainBackend::kDlbooster, &gpu::AlexNet(), 1));
  EXPECT_GT(one.throughput, 2496.0 * 0.93);
  auto two = SimulateTraining(Base(TrainBackend::kDlbooster, &gpu::AlexNet(), 2));
  EXPECT_GT(two.throughput, 4652.0 * 0.90);
}

TEST(TrainingSimTest, LmdbDegradesWithTwoGpus) {
  auto one = SimulateTraining(Base(TrainBackend::kLmdb, &gpu::AlexNet(), 1));
  auto two = SimulateTraining(Base(TrainBackend::kLmdb, &gpu::AlexNet(), 2));
  // Fig. 2/5(b): 1 GPU near boundary, 2 GPUs ~30% below it.
  EXPECT_GT(one.throughput, 2300.0);
  EXPECT_LT(two.throughput, 4652.0 * 0.75);
  EXPECT_GT(two.throughput, 4652.0 * 0.55);
}

TEST(TrainingSimTest, CpuBestEffortBurnsTwelveCoresPerGpuOnAlexNet) {
  auto r = SimulateTraining(Base(TrainBackend::kCpu, &gpu::AlexNet(), 1));
  EXPECT_EQ(r.decode_threads_per_gpu, 12);
  // Near (but below) the boundary: interference cap ~0.94.
  EXPECT_NEAR(r.throughput, 2346.0, 2346.0 * 0.06);
  EXPECT_GT(r.cpu_cores, 10.0);
}

TEST(TrainingSimTest, CpuDefaultConfigIsAQuarterOfTheBoundary) {
  TrainConfig config = Base(TrainBackend::kCpu, &gpu::AlexNet(), 1);
  config.cpu_decode_threads_per_gpu = cal::kCpuDefaultDecodeThreads;
  auto r = SimulateTraining(config);
  EXPECT_NEAR(r.throughput, 0.25 * 2496.0, 0.25 * 2496.0 * 0.15);
}

TEST(TrainingSimTest, CpuResNet18NeedsAboutSevenCores) {
  auto r = SimulateTraining(Base(TrainBackend::kCpu, &gpu::ResNet18(), 1));
  EXPECT_GE(r.decode_threads_per_gpu, 6);
  EXPECT_LE(r.decode_threads_per_gpu, 8);
}

TEST(TrainingSimTest, DlboosterCpuCostMatchesFig6d) {
  auto r = SimulateTraining(Base(TrainBackend::kDlbooster, &gpu::ResNet18(), 1));
  // ~1.5 cores in total; preprocessing only ~0.3 of one core.
  EXPECT_LT(r.cpu_cores, 2.0);
  EXPECT_GT(r.cpu_cores, 1.0);
  ASSERT_TRUE(r.cpu_by_category.count("preprocess"));
  EXPECT_NEAR(r.cpu_by_category.at("preprocess"), 0.3, 0.1);
  ASSERT_TRUE(r.cpu_by_category.count("kernel_launch"));
  EXPECT_NEAR(r.cpu_by_category.at("kernel_launch"), 0.95, 0.15);
}

TEST(TrainingSimTest, LmdbCheaperThanCpuButPricierThanDlbooster) {
  auto cpu = SimulateTraining(Base(TrainBackend::kCpu, &gpu::AlexNet(), 1));
  auto lmdb = SimulateTraining(Base(TrainBackend::kLmdb, &gpu::AlexNet(), 1));
  auto dlb = SimulateTraining(Base(TrainBackend::kDlbooster, &gpu::AlexNet(), 1));
  EXPECT_LT(lmdb.cpu_cores, cpu.cpu_cores);
  EXPECT_LT(dlb.cpu_cores, lmdb.cpu_cores);
}

TEST(TrainingSimTest, MnistIsComputeBoundForEveryBackend) {
  for (TrainBackend backend :
       {TrainBackend::kCpu, TrainBackend::kLmdb, TrainBackend::kDlbooster}) {
    TrainConfig config = Base(backend, &gpu::LeNet5(), 1);
    config.dataset_fits_memory = true;
    config.sim_seconds = 5.0;
    auto r = SimulateTraining(config);
    // All backends exceed 75% of the boundary (Fig. 5(a)); the per-item
    // copy cost separates them, not decode.
    EXPECT_GT(r.throughput, 100000.0 * 0.75) << TrainBackendName(backend);
    EXPECT_LT(r.cpu_cores, 4.0) << TrainBackendName(backend);
  }
}

TEST(TrainingSimTest, PerItemCopiesCostLeNetThroughput) {
  TrainConfig block = Base(TrainBackend::kDlbooster, &gpu::LeNet5(), 1);
  block.dataset_fits_memory = true;
  block.sim_seconds = 5.0;
  TrainConfig per_item = block;
  per_item.force_per_item_copies = true;
  const double block_tp = SimulateTraining(block).throughput;
  const double item_tp = SimulateTraining(per_item).throughput;
  EXPECT_LT(item_tp, block_tp * 0.92);  // §5.2: ~20% loss from small copies
  EXPECT_GT(item_tp, block_tp * 0.60);
}

TEST(TrainingSimTest, DeterministicAcrossRuns) {
  TrainConfig config = Base(TrainBackend::kDlbooster, &gpu::AlexNet(), 2);
  config.sim_seconds = 5.0;
  auto a = SimulateTraining(config);
  auto b = SimulateTraining(config);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_DOUBLE_EQ(a.cpu_cores, b.cpu_cores);
}

}  // namespace
}  // namespace dlb::workflow
