#include "workflow/report.h"

#include <gtest/gtest.h>

namespace dlb::workflow {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // All data lines have the same width.
  size_t pos = 0, prev_len = 0;
  int lines = 0;
  while (pos < out.size()) {
    size_t eol = out.find('\n', pos);
    if (eol == std::string::npos) break;
    size_t len = eol - pos;
    if (lines > 0 && len > 0) {
      EXPECT_LE(len, prev_len + 2);
    }
    prev_len = std::max(prev_len, len);
    pos = eol + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 4);  // header + rule + 2 rows
}

TEST(TableTest, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NO_THROW(t.Render());
}

TEST(FmtTest, FixedPrecision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
  EXPECT_EQ(Fmt(0.301, 2), "0.30");
}

TEST(FmtCountTest, ThousandsSeparators) {
  EXPECT_EQ(FmtCount(4652), "4,652");
  EXPECT_EQ(FmtCount(100), "100");
  EXPECT_EQ(FmtCount(1234567), "1,234,567");
  EXPECT_EQ(FmtCount(0), "0");
}

}  // namespace
}  // namespace dlb::workflow
