#include "workflow/econ.h"

#include <gtest/gtest.h>

namespace dlb::workflow {
namespace {

TEST(EconTest, PaperNumbersReproduce) {
  EconInput input;  // defaults follow §5.4
  EconReport report = AnalyzeEconomics(input);
  // 30 cores at ~$0.105/h => ~$3.15/h, comfortably above the paper's $1.5/h.
  EXPECT_GT(report.freed_core_dollars_per_hour, 1.5);
  // "~$900 per year" per core => ~27k for 30 cores.
  EXPECT_NEAR(report.core_revenue_per_year, 30 * 900.0, 3000.0);
}

TEST(EconTest, FpgaPaysForItselfInWeeks) {
  EconReport report = AnalyzeEconomics(EconInput{});
  EXPECT_LT(report.fpga_payback_days, 90.0);
  EXPECT_GT(report.fpga_payback_days, 7.0);
}

TEST(EconTest, PowerSavingsPositive) {
  EconReport report = AnalyzeEconomics(EconInput{});
  // 30 cores' worth of CPU power dwarfs the 25 W FPGA.
  EXPECT_GT(report.power_saved_watts, 100.0);
  EXPECT_GT(report.power_saved_dollars_per_year, 50.0);
}

TEST(EconTest, ScalesWithCoresReplaced) {
  EconInput few;
  few.cores_replaced = 10;
  EconInput many;
  many.cores_replaced = 30;
  EXPECT_NEAR(AnalyzeEconomics(many).core_revenue_per_year,
              3 * AnalyzeEconomics(few).core_revenue_per_year, 1.0);
}

TEST(EconTest, ReportRendersKeyRows) {
  EconInput input;
  const std::string text = RenderEconReport(input, AnalyzeEconomics(input));
  EXPECT_NE(text.find("payback"), std::string::npos);
  EXPECT_NE(text.find("power"), std::string::npos);
  EXPECT_NE(text.find("$/year"), std::string::npos);
}

}  // namespace
}  // namespace dlb::workflow
