// Admission primitives (frontdoor/admission.h) under a fake clock: token
// bucket refill schedules, tenant-spec parsing, deadline math, and shed
// hysteresis. These decisions gate real traffic, so the exact arithmetic
// is pinned here rather than observed statistically through sockets.
#include "frontdoor/admission.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dlb::frontdoor {
namespace {

constexpr uint64_t kSecond = 1'000'000'000ull;

// ---------------------------------------------------------------------------
// TokenBucket

TEST(TokenBucketTest, StartsFullAndDrainsToRejection) {
  TokenBucket bucket(/*rate_per_s=*/10, /*burst=*/3);
  uint64_t now = kSecond;
  // A quiet tenant may open with its full burst...
  EXPECT_TRUE(bucket.TryAcquire(now));
  EXPECT_TRUE(bucket.TryAcquire(now));
  EXPECT_TRUE(bucket.TryAcquire(now));
  // ...and the next zero-elapsed acquire is refused.
  EXPECT_FALSE(bucket.TryAcquire(now));
}

TEST(TokenBucketTest, RefillsAtConfiguredRate) {
  TokenBucket bucket(/*rate_per_s=*/10, /*burst=*/3);
  uint64_t now = kSecond;
  while (bucket.TryAcquire(now)) {
  }
  // 10 tokens/s: 50 ms buys half a token (still refused), 100 ms a whole
  // one (admitted exactly once).
  now += 50'000'000;
  EXPECT_FALSE(bucket.TryAcquire(now));
  now += 50'000'000;
  EXPECT_TRUE(bucket.TryAcquire(now));
  EXPECT_FALSE(bucket.TryAcquire(now));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket bucket(/*rate_per_s=*/1000, /*burst=*/2);
  uint64_t now = kSecond;
  EXPECT_EQ(bucket.TokensAt(now), 2.0);  // prime the clock
  now += 60 * kSecond;                   // a minute idle at 1000/s
  EXPECT_EQ(bucket.TokensAt(now), 2.0);  // still just the burst depth
}

TEST(TokenBucketTest, ZeroRateMeansUnlimited) {
  TokenBucket bucket(/*rate_per_s=*/0, /*burst=*/0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(kSecond));
  }
}

TEST(TokenBucketTest, ClockGoingBackwardsIsIgnored) {
  TokenBucket bucket(/*rate_per_s=*/10, /*burst=*/1);
  uint64_t now = 10 * kSecond;
  EXPECT_TRUE(bucket.TryAcquire(now));
  // A step back in time must not mint tokens (or underflow the elapsed
  // computation).
  EXPECT_FALSE(bucket.TryAcquire(now - kSecond));
  EXPECT_FALSE(bucket.TryAcquire(now));
}

// ---------------------------------------------------------------------------
// ParseTenantSpecs

TEST(ParseTenantSpecsTest, FullGrammar) {
  auto specs = ParseTenantSpecs(
      "premium:prio=2,rate=500,burst=64,deadline=50,queue=8;batch:prio=0");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs.value().size(), 2u);
  const TenantSpec& premium = specs.value()[0];
  EXPECT_EQ(premium.name, "premium");
  EXPECT_EQ(premium.priority, 2);
  EXPECT_EQ(premium.rate_per_s, 500.0);
  EXPECT_EQ(premium.burst, 64.0);
  EXPECT_EQ(premium.default_deadline_ms, 50u);
  EXPECT_EQ(premium.queue_capacity, 8u);
  const TenantSpec& batch = specs.value()[1];
  EXPECT_EQ(batch.name, "batch");
  EXPECT_EQ(batch.priority, 0);
}

TEST(ParseTenantSpecsTest, BareNameTakesDefaults) {
  auto specs = ParseTenantSpecs("solo");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs.value().size(), 1u);
  const TenantSpec defaults;
  EXPECT_EQ(specs.value()[0].priority, defaults.priority);
  EXPECT_EQ(specs.value()[0].rate_per_s, defaults.rate_per_s);
  EXPECT_EQ(specs.value()[0].default_deadline_ms,
            defaults.default_deadline_ms);
}

TEST(ParseTenantSpecsTest, RejectsMalformedSpecs) {
  // Each entry names the failure the parser must catch.
  EXPECT_FALSE(ParseTenantSpecs("").ok()) << "empty spec";
  EXPECT_FALSE(ParseTenantSpecs(";;").ok()) << "only separators";
  EXPECT_FALSE(ParseTenantSpecs("Premium:prio=1").ok()) << "uppercase name";
  EXPECT_FALSE(ParseTenantSpecs("a b:prio=1").ok()) << "space in name";
  EXPECT_FALSE(ParseTenantSpecs("a:prio=1;a:prio=2").ok()) << "duplicate";
  EXPECT_FALSE(ParseTenantSpecs("a:prio").ok()) << "missing value";
  EXPECT_FALSE(ParseTenantSpecs("a:prio=x").ok()) << "non-numeric value";
  EXPECT_FALSE(ParseTenantSpecs("a:prio=-1").ok()) << "negative value";
  EXPECT_FALSE(ParseTenantSpecs("a:color=red").ok()) << "unknown key";
  EXPECT_FALSE(ParseTenantSpecs("a:queue=0").ok()) << "zero queue";
}

// ---------------------------------------------------------------------------
// AdmissionController

TEST(AdmissionControllerTest, FloorAppliesBeforeAnyObservation) {
  AdmissionController::Options options;
  options.min_service_rate = 50.0;
  AdmissionController admission(options);
  // 50/s floor: 10 queued = 200 ms estimated wait.
  EXPECT_DOUBLE_EQ(admission.ServiceRatePerS(), 50.0);
  EXPECT_DOUBLE_EQ(admission.EstimatedWaitMs(10), 200.0);
  EXPECT_TRUE(admission.DeadlineFeasible(10, 200));
  EXPECT_FALSE(admission.DeadlineFeasible(11, 200));
}

TEST(AdmissionControllerTest, EwmaTracksObservedRate) {
  AdmissionController::Options options;
  options.alpha = 0.5;
  options.min_service_rate = 1.0;
  AdmissionController admission(options);
  uint64_t now = kSecond;
  admission.ObserveProgress(0, now);  // priming sample, no rate yet
  now += kSecond;
  admission.ObserveProgress(100, now);  // first window seeds the EWMA
  EXPECT_DOUBLE_EQ(admission.ServiceRatePerS(), 100.0);
  now += kSecond;
  admission.ObserveProgress(300, now);  // 200/s window, alpha 0.5
  EXPECT_DOUBLE_EQ(admission.ServiceRatePerS(), 150.0);
  EXPECT_DOUBLE_EQ(admission.EstimatedWaitMs(150), 1000.0);
}

TEST(AdmissionControllerTest, CounterResetSkipsWindow) {
  AdmissionController::Options options;
  options.alpha = 0.5;
  options.min_service_rate = 1.0;
  AdmissionController admission(options);
  uint64_t now = kSecond;
  admission.ObserveProgress(0, now);
  now += kSecond;
  admission.ObserveProgress(100, now);
  now += kSecond;
  // Counter went backwards (pipeline restarted): the window counts as
  // zero progress, never as a negative rate.
  admission.ObserveProgress(10, now);
  EXPECT_DOUBLE_EQ(admission.ServiceRatePerS(), 50.0);
  now += kSecond;
  admission.ObserveProgress(110, now);  // resumes from the reset baseline
  EXPECT_DOUBLE_EQ(admission.ServiceRatePerS(), 75.0);
}

TEST(AdmissionControllerTest, NonMonotonicClockSampleIgnored) {
  AdmissionController admission;
  uint64_t now = 10 * kSecond;
  admission.ObserveProgress(0, now);
  admission.ObserveProgress(1000, now);  // zero-width window: dropped
  admission.ObserveProgress(1000, now - kSecond);  // backwards: dropped
  EXPECT_DOUBLE_EQ(admission.ServiceRatePerS(),
                   AdmissionController::Options().min_service_rate);
}

// ---------------------------------------------------------------------------
// ShedController

TEST(ShedControllerTest, FirstStepUpIsImmediate) {
  ShedController::Options options;
  options.dwell_ns = kSecond;
  options.max_level = 3;
  ShedController shed(options);
  // Overload must not wait out a dwell window to start shedding.
  EXPECT_EQ(shed.Update(2.0, kSecond), 1);
}

TEST(ShedControllerTest, EscalationAndRecoveryAreDwellGated) {
  ShedController::Options options;
  options.high = 1.0;
  options.low = 0.6;
  options.dwell_ns = kSecond;
  options.max_level = 3;
  ShedController shed(options);
  uint64_t now = kSecond;

  EXPECT_EQ(shed.Update(2.0, now), 1);  // immediate first step
  now += kSecond / 2;
  EXPECT_EQ(shed.Update(2.0, now), 1);  // half a dwell: no escalation
  now += kSecond / 2;
  EXPECT_EQ(shed.Update(2.0, now), 2);  // dwell elapsed: step up
  now += kSecond;
  EXPECT_EQ(shed.Update(2.0, now), 3);
  now += kSecond;
  EXPECT_EQ(shed.Update(2.0, now), 3);  // clamped at max_level

  // Recovery steps down one dwell at a time, never instantly to zero.
  // (The clamped sample above changed nothing, so the dwell since the
  // step to 3 has already elapsed and the first down-step is allowed.)
  now += kSecond / 2;
  EXPECT_EQ(shed.Update(0.1, now), 2);
  now += kSecond / 2;
  EXPECT_EQ(shed.Update(0.1, now), 2);  // half a dwell: recovery gated too
  now += kSecond / 2;
  EXPECT_EQ(shed.Update(0.1, now), 1);
  now += kSecond;
  EXPECT_EQ(shed.Update(0.1, now), 0);
  EXPECT_EQ(shed.Level(), 0);
}

TEST(ShedControllerTest, HysteresisBandHoldsLevel) {
  ShedController::Options options;
  options.high = 1.0;
  options.low = 0.6;
  options.dwell_ns = kSecond;
  options.max_level = 2;
  ShedController shed(options);
  uint64_t now = kSecond;
  EXPECT_EQ(shed.Update(1.5, now), 1);
  // Pressure inside (low, high]: the level must hold through any number
  // of dwell periods — this is what prevents boundary flapping.
  for (int i = 0; i < 10; ++i) {
    now += 2 * kSecond;
    EXPECT_EQ(shed.Update(0.8, now), 1);
  }
}

}  // namespace
}  // namespace dlb::frontdoor
