// End-to-end front-door coverage: a real pipeline (cpu backend, network
// source) behind the FrontDoor, exercised through the deterministic
// Dispatch seam for the status-code contract and through a real socket for
// the serving path. The admission arithmetic itself is pinned in
// admission_test.cpp; here the wiring is under test — requests flow
// admission -> scheduler -> rx queue -> pipeline -> completion -> client.
#include "frontdoor/front_door.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "frontdoor/loadgen.h"

namespace dlb::frontdoor {
namespace {

// One pipeline + front door per test: Stop() closes the rx queue, which
// ends the pipeline's input stream for good.
class FrontDoorTest : public ::testing::Test {
 protected:
  void StartDoor(const std::string& tenants) {
    core::PipelineConfig config;
    config.backend = "cpu";
    config.options.batch_size = 4;
    config.options.num_threads = 1;
    config.options.queue_depth = 4;
    config.options.resize_w = 32;
    config.options.resize_h = 32;
    config.options.linger_ms = 2;
    auto pipeline = core::PipelineBuilder()
                        .WithConfig(config)
                        .WithNetworkSource(&rx_queue_)
                        .Build();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    pipeline_ = std::move(pipeline.value());

    FrontDoorOptions options;
    options.tenants = tenants;
    options.control_interval_ms = 20;
    door_ = std::make_unique<FrontDoor>(pipeline_.get(), &rx_queue_,
                                        options);
    ASSERT_TRUE(door_->Start().ok());
  }

  void TearDown() override {
    if (door_ != nullptr) door_->Stop();
  }

  // A decodable JPEG payload (what a well-behaved client posts).
  std::string Payload() {
    auto dataset = GenerateDataset(ImageNetLikeSpec(1));
    EXPECT_TRUE(dataset.ok());
    auto bytes = dataset.value().store->Read(dataset.value().manifest.At(0));
    EXPECT_TRUE(bytes.ok());
    return std::string(bytes.value().begin(), bytes.value().end());
  }

  http::HttpResponse Infer(const std::string& query,
                           const std::string& body) {
    return door_->Dispatch({"POST", "/infer", query, body});
  }

  BoundedQueue<NetworkImage> rx_queue_{16};
  std::unique_ptr<core::Pipeline> pipeline_;
  std::unique_ptr<FrontDoor> door_;
};

TEST_F(FrontDoorTest, StartRejectsMalformedTenantSpec) {
  core::PipelineConfig config;
  config.backend = "cpu";
  auto pipeline = core::PipelineBuilder()
                      .WithConfig(config)
                      .WithNetworkSource(&rx_queue_)
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  FrontDoorOptions options;
  options.tenants = "Bad Tenant:prio=1";
  FrontDoor door(pipeline.value().get(), &rx_queue_, options);
  EXPECT_FALSE(door.Start().ok());
  // The failed door never took ownership of the rx queue; close it so the
  // local pipeline's input stream ends and its destructor can join.
  rx_queue_.Close();
}

TEST_F(FrontDoorTest, StatusCodeContract) {
  StartDoor("solo:prio=1,deadline=5000");
  const std::string payload = Payload();

  // 405: /infer is POST-only.
  EXPECT_EQ(door_->Dispatch({"GET", "/infer", "", ""}).status, 405);
  // 400: a POST with no payload has nothing to decode.
  EXPECT_EQ(Infer("tenant=solo", "").status, 400);
  // 403: tenants are a closed set.
  http::HttpResponse unknown = Infer("tenant=intruder", payload);
  EXPECT_EQ(unknown.status, 403);
  EXPECT_NE(unknown.body.find("unknown_tenant"), std::string::npos);
  // 200: the full path — admitted, decoded, answered with a prediction.
  http::HttpResponse ok = Infer("tenant=solo", payload);
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("\"tenant\":\"solo\""), std::string::npos);
  EXPECT_NE(ok.body.find("\"prediction\":"), std::string::npos);
  // 422: a payload that fails to decode is the client's problem, not a
  // server 5xx (the overload-soak lane counts on this distinction).
  EXPECT_EQ(Infer("tenant=solo", "this is not a jpeg").status, 422);
}

TEST_F(FrontDoorTest, SingleTenantIsTheDefault) {
  StartDoor("solo:prio=1,deadline=5000");
  EXPECT_EQ(Infer("", Payload()).status, 200);
}

TEST_F(FrontDoorTest, RateLimitReturns429) {
  // burst=1: the second back-to-back request finds an empty bucket.
  StartDoor("slow:prio=1,rate=1,burst=1,deadline=5000");
  const std::string payload = Payload();
  EXPECT_EQ(Infer("tenant=slow", payload).status, 200);
  http::HttpResponse limited = Infer("tenant=slow", payload);
  EXPECT_EQ(limited.status, 429);
  EXPECT_NE(limited.body.find("rate_limited"), std::string::npos);
}

TEST_F(FrontDoorTest, SnapshotAndHealthEndpoints) {
  StartDoor("premium:prio=2,deadline=5000;batch:prio=0,deadline=5000");
  ASSERT_EQ(Infer("tenant=premium", Payload()).status, 200);

  http::HttpResponse snapshot =
      door_->Dispatch({"GET", "/frontdoor", "", ""});
  EXPECT_EQ(snapshot.status, 200);
  EXPECT_NE(snapshot.body.find("\"shed_level\":0"), std::string::npos);
  EXPECT_NE(snapshot.body.find("\"name\":\"premium\""), std::string::npos);
  EXPECT_NE(snapshot.body.find("\"name\":\"batch\""), std::string::npos);
  EXPECT_NE(snapshot.body.find("\"admitted\":1"), std::string::npos);

  http::HttpResponse health = door_->Dispatch({"GET", "/healthz", "", ""});
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("ok"), std::string::npos);
}

TEST_F(FrontDoorTest, ServesOverARealSocket) {
  StartDoor("solo:prio=1,deadline=5000");
  ASSERT_GT(door_->Port(), 0);
  const std::string payload = Payload();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(door_->Port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "POST /infer?tenant=solo HTTP/1.1\r\nHost: t\r\n"
      "Content-Length: " + std::to_string(payload.size()) +
      "\r\nConnection: close\r\n\r\n" + payload;
  ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(raw.find("HTTP/1.1 200"), std::string::npos) << raw;
  EXPECT_NE(raw.find("\"prediction\":"), std::string::npos);
}

TEST_F(FrontDoorTest, StopIsIdempotentAndAccountsEveryAdmission) {
  StartDoor("solo:prio=1,deadline=5000");
  const std::string payload = Payload();
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(Infer("tenant=solo", payload).status, 200);
  }
  EXPECT_EQ(door_->Admitted(), 6u);
  EXPECT_EQ(door_->Completed(), 6u);
  door_->Stop();
  door_->Stop();  // second Stop must be a no-op
  // Post-stop requests are refused, not crashed: the HTTP server is down,
  // but the Dispatch seam still routes — admission answers shutting_down.
  EXPECT_EQ(Infer("tenant=solo", payload).status, 503);
}

// ---------------------------------------------------------------------------
// Loadgen arrival schedules (pure functions; no server involved).

TEST(LoadgenScheduleTest, ArrivalsAreDeterministicAndOnRate) {
  for (ArrivalPattern pattern :
       {ArrivalPattern::kSteady, ArrivalPattern::kPoisson,
        ArrivalPattern::kBursty, ArrivalPattern::kDiurnal,
        ArrivalPattern::kStep}) {
    const auto a = GenerateArrivals(pattern, 200.0, 5.0, 7);
    const auto b = GenerateArrivals(pattern, 200.0, 5.0, 7);
    EXPECT_EQ(a, b) << "same seed must give the same schedule";
    // Mean rate holds within 15% for every shape (the shapes
    // redistribute arrivals, they do not add or remove load).
    EXPECT_NEAR(static_cast<double>(a.size()), 1000.0, 150.0);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    for (double t : a) {
      EXPECT_GE(t, 0.0);
      EXPECT_LT(t, 5.0);
    }
  }
}

TEST(LoadgenScheduleTest, TenantMixParses) {
  auto mix = ParseTenantMix("premium=0.3:50,batch=0.7");
  ASSERT_TRUE(mix.ok()) << mix.status().ToString();
  ASSERT_EQ(mix.value().size(), 2u);
  EXPECT_EQ(mix.value()[0].name, "premium");
  EXPECT_DOUBLE_EQ(mix.value()[0].weight, 0.3);
  EXPECT_EQ(mix.value()[0].deadline_ms, 50u);
  EXPECT_EQ(mix.value()[1].deadline_ms, 0u);

  // A bare name is a whole-weight tenant.
  auto bare = ParseTenantMix("solo");
  ASSERT_TRUE(bare.ok());
  EXPECT_DOUBLE_EQ(bare.value()[0].weight, 1.0);

  EXPECT_FALSE(ParseTenantMix("").ok());
  EXPECT_FALSE(ParseTenantMix("a=x").ok());
  EXPECT_FALSE(ParseTenantMix("a=-1").ok());
  EXPECT_FALSE(ParseTenantMix("a=0").ok());
}

TEST(LoadgenScheduleTest, PatternNamesRoundTrip) {
  EXPECT_TRUE(ParseArrivalPattern("poisson").ok());
  EXPECT_TRUE(ParseArrivalPattern("bursty").ok());
  EXPECT_TRUE(ParseArrivalPattern("diurnal").ok());
  EXPECT_TRUE(ParseArrivalPattern("step").ok());
  EXPECT_TRUE(ParseArrivalPattern("steady").ok());
  EXPECT_FALSE(ParseArrivalPattern("chaotic").ok());
}

}  // namespace
}  // namespace dlb::frontdoor
