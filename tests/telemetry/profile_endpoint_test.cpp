// GET /profile end to end against a live pipeline: the endpoint runs a
// blocking in-process profile for the requested window and returns either
// collapsed-stack text (default) or the full JSON report. Also checks that
// /stats carries the new per-stage cpu_ns/wait_ns fields.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "telemetry/stage_tag.h"
#include "telemetry/telemetry.h"

namespace dlb::telemetry {
namespace {

struct GetResult {
  int status = -1;
  std::string body;
};

GetResult HttpGet(int port, const std::string& target) {
  GetResult r;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return r;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return r;
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(req.size()));
  std::string raw;
  char buf[8192];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos) return r;
  r.status = std::atoi(raw.c_str() + sp + 1);
  const size_t body = raw.find("\r\n\r\n");
  if (body != std::string::npos) r.body = raw.substr(body + 4);
  return r;
}

TEST(ProfileEndpointTest, ServesCollapsedTextAndJson) {
  auto ds = GenerateDataset([] {
    DatasetSpec spec = ImageNetLikeSpec(32);
    spec.width = 64;
    spec.height = 48;
    return spec;
  }());
  ASSERT_TRUE(ds.ok());

  core::PipelineConfig config;
  config.backend = "dlbooster";
  config.options.batch_size = 4;
  config.options.resize_w = 32;
  config.options.resize_h = 32;
  config.max_images = 32;   // one pass; the puller drains and exits
  config.monitor_port = 0;  // ephemeral
  auto pipeline = core::PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.value().manifest, ds.value().store.get())
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  const int port = pipeline.value()->MonitorPort();
  ASSERT_GT(port, 0);

  std::jthread puller([&pipeline] {
    while (pipeline.value()->NextBatch().ok()) {
    }
  });
  puller.join();

  // The profiler samples every tagged thread in the process, so a spinner
  // tagged decode guarantees the windows below see a stack — no race
  // against how fast the pipeline drained.
  std::atomic<bool> stop{false};
  std::jthread spinner([&stop] {
    prof::ScopedStageTag tag(static_cast<int>(Stage::kDecode));
    volatile uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) sink = sink + 1;
  });

  // Default window is 2 s; ms= keeps the test fast. Collapsed text is
  // "stack count" lines.
  GetResult text = HttpGet(port, "/profile?ms=150");
  ASSERT_EQ(text.status, 200);
  EXPECT_FALSE(text.body.empty());
  EXPECT_NE(text.body.find(' '), std::string::npos);

  GetResult json = HttpGet(port, "/profile?ms=120&format=json");
  ASSERT_EQ(json.status, 200);
  EXPECT_EQ(json.body.front(), '{');
  EXPECT_NE(json.body.find("\"stages\""), std::string::npos) << json.body;
  EXPECT_NE(json.body.find("\"stacks\""), std::string::npos) << json.body;
  EXPECT_NE(json.body.find("\"samples\""), std::string::npos) << json.body;

  stop.store(true, std::memory_order_relaxed);
  spinner.join();

  // /stats now exposes the cpu/wait split per stage.
  GetResult stats = HttpGet(port, "/stats");
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"cpu_ns\""), std::string::npos);
  EXPECT_NE(stats.body.find("\"wait_ns\""), std::string::npos);
}

}  // namespace
}  // namespace dlb::telemetry
