// End-to-end acceptance: an injected fault storm against a declared
// infer_p99 SLO must produce, with no human in the loop, a flight bundle
// containing a loadable Perfetto trace of the breach window, an
// auto-captured profile, the event tail and the trigger metadata.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "common/json.h"
#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/slo.h"

namespace dlb {
namespace {

namespace fs = std::filesystem;

std::string Slurp(const fs::path& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(FlightAcceptanceTest, FaultStormAgainstSloProducesBundle) {
  auto ds = GenerateDataset([] {
    DatasetSpec spec = ImageNetLikeSpec(64);
    spec.width = 64;
    spec.height = 48;
    return spec;
  }());
  ASSERT_TRUE(ds.ok());

  // CI sets DLB_FLIGHT_ARTIFACT_DIR to a workspace path so the bundle from
  // a failing run gets uploaded as an artifact; locally it lives in TempDir.
  std::string base = ::testing::TempDir();
  if (const char* env = std::getenv("DLB_FLIGHT_ARTIFACT_DIR");
      env != nullptr && env[0] != '\0') {
    base = env;
  }
  const std::string flight_dir = base + "/dlb_flight_acceptance";
  fs::remove_all(flight_dir);

  core::PipelineConfig config;
  config.backend = "dlbooster";
  config.options.batch_size = 8;
  config.options.resize_w = 32;
  config.options.resize_h = 32;
  // Fault storm: every decode sleeps 5 ms — infer latency blows through the
  // objective immediately and keeps violating.
  config.faults = "latency_spike=1.0,latency_spike_ms=5";
  // A deliberately unmeetable objective over a short burn window, evaluated
  // at a fast cadence so the breach fires within a couple of seconds.
  config.slo = "infer_p99<1ms/250ms";
  config.monitor_sample_ms = 25;
  config.flight_dir = flight_dir;
  config.flight_profile_ms = 50;

  auto pipeline = core::PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.value().manifest, ds.value().store.get())
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_NE(pipeline.value()->Slo(), nullptr);
  flight::FlightRecorder* recorder = pipeline.value()->Flight();
  ASSERT_NE(recorder, nullptr);

  // Keep the pipeline flowing so the sampler sees violating latency
  // samples; the SLO engine and flight recorder do the rest autonomously.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (recorder->Bundles().empty() &&
         std::chrono::steady_clock::now() < deadline) {
    auto batch = pipeline.value()->NextBatch();
    if (!batch.ok()) break;  // dataset loops; only an error ends the stream
  }

  ASSERT_FALSE(recorder->Bundles().empty())
      << "no bundle written within 30s; slo=" << pipeline.value()->Slo()->Json();
  EXPECT_GE(pipeline.value()->Slo()->Breaches(), 1u);

  const fs::path bundle = recorder->Bundles().front().path;
  EXPECT_NE(bundle.filename().string().find("slo_breach"), std::string::npos);

  // manifest.json: the trigger metadata names the breached objective.
  const std::string manifest = Slurp(bundle / "manifest.json");
  auto manifest_json = json::Parse(manifest);
  ASSERT_TRUE(manifest_json.ok()) << manifest;
  EXPECT_NE(manifest.find("\"trigger\":\"slo_breach\""), std::string::npos);
  EXPECT_NE(manifest.find("infer_p99"), std::string::npos);
  EXPECT_NE(manifest.find("\"buildinfo\""), std::string::npos);

  // trace.json: a loadable Perfetto/Chrome trace with real spans from the
  // breach window.
  const std::string trace = Slurp(bundle / "trace.json");
  auto trace_json = json::Parse(trace);
  ASSERT_TRUE(trace_json.ok()) << "trace.json must parse as JSON";
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\""), std::string::npos)
      << "trace should contain at least one event";

  // profile.json: the auto-captured profile window.
  const std::string profile = Slurp(bundle / "profile.json");
  auto profile_json = json::Parse(profile);
  ASSERT_TRUE(profile_json.ok());
  EXPECT_NE(profile.find("\"samples\""), std::string::npos);

  // events.jsonl: a non-empty structured tail (flight mode auto-raises the
  // event level to info), including the breach record itself.
  const std::string events = Slurp(bundle / "events.jsonl");
  EXPECT_FALSE(events.empty());
  EXPECT_NE(events.find("slo_breach"), std::string::npos);

  // metrics.json + series.json ride along.
  EXPECT_TRUE(fs::exists(bundle / "metrics.json"));
  EXPECT_TRUE(fs::exists(bundle / "series.json"));
  EXPECT_TRUE(fs::exists(bundle / "topology.txt"));
  EXPECT_TRUE(fs::exists(bundle / "stats.json"));

  // The breach is visible on the health surface: degraded but serving.
  EXPECT_TRUE(pipeline.value()->Slo()->AnyBurning());

  pipeline.value()->Shutdown();
  fs::remove_all(flight_dir);
}

}  // namespace
}  // namespace dlb
