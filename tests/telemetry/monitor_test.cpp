// The monitoring plane end to end: Prometheus rendering (golden-parsed),
// sampler rate/utilization/watermark math (deterministic via SampleAt),
// HTTP routing, and a real-socket scrape of a live pipeline — including
// /healthz flipping to 503 on a watchdog stall, driven by Probe().
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics_sampler.h"
#include "telemetry/monitor_server.h"
#include "telemetry/trace.h"
#include "telemetry/watchdog.h"

namespace dlb::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Golden parser for the Prometheus text format (the contract /metrics and
// any scraper agree on). Returns samples keyed by full name (labels kept);
// fails the test on any malformed line.
struct PrometheusDoc {
  std::map<std::string, std::string> types;   // family -> counter|gauge|summary
  std::map<std::string, double> samples;      // "name{labels}" -> value
};

PrometheusDoc GoldenParse(const std::string& text) {
  PrometheusDoc doc;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;

    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t sp = line.rfind(' ');
      const std::string family = line.substr(7, sp - 7);
      const std::string type = line.substr(sp + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "summary")
          << line;
      doc.types[family] = type;
      continue;
    }
    if (line[0] == '#') {
      ADD_FAILURE() << "unknown comment form: " << line;
      continue;
    }

    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos) {
      ADD_FAILURE() << "no value on sample line: " << line;
      continue;
    }
    const std::string key = line.substr(0, sp);
    char* parse_end = nullptr;
    const double value = std::strtod(line.c_str() + sp + 1, &parse_end);
    if (*parse_end != '\0') {
      ADD_FAILURE() << "bad sample value: " << line;
      continue;
    }

    // Metric name = key up to the label block; must trace back to a
    // declared family (exactly, or via the summary's _sum/_count).
    std::string name = key.substr(0, key.find('{'));
    EXPECT_EQ(name.rfind("dlb_", 0), 0u) << "unprefixed metric: " << line;
    bool declared = doc.types.count(name) > 0;
    for (const char* suffix : {"_sum", "_count"}) {
      if (declared) break;
      if (name.ends_with(suffix)) {
        declared =
            doc.types.count(name.substr(0, name.size() - strlen(suffix))) > 0;
      }
    }
    EXPECT_TRUE(declared) << "sample before # TYPE: " << line;
    doc.samples[key] = value;
  }
  return doc;
}

// Short blocking HTTP GET against loopback; returns (status, body,
// content-type).
struct GetResult {
  int status = 0;
  std::string content_type;
  std::string body;
};

GetResult HttpGet(int port, const std::string& target) {
  GetResult r;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return r;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return r;
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(req.size()));
  std::string raw;
  char buf[8192];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t sp = raw.find(' ');
  if (sp == std::string::npos) return r;
  r.status = std::atoi(raw.c_str() + sp + 1);
  const size_t ct = raw.find("Content-Type: ");
  if (ct != std::string::npos) {
    r.content_type = raw.substr(ct + 14, raw.find("\r\n", ct) - ct - 14);
  }
  const size_t body = raw.find("\r\n\r\n");
  if (body != std::string::npos) r.body = raw.substr(body + 4);
  return r;
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(ExpositionTest, PrometheusNameSanitization) {
  EXPECT_EQ(PrometheusName("stage.decode.items"), "dlb_stage_decode_items");
  EXPECT_EQ(PrometheusName("fpga.cmd-fifo depth"), "dlb_fpga_cmd_fifo_depth");
  EXPECT_EQ(PrometheusName("plain"), "dlb_plain");
}

TEST(ExpositionTest, RenderedRegistryGoldenParses) {
  MetricRegistry reg;
  reg.GetCounter("images.ok")->Add(42);
  reg.GetGauge("queue.depth")->Set(3.0);
  reg.GetGauge("queue.depth")->Set(1.0);
  for (uint64_t v : {100, 200, 300, 400}) {
    reg.GetHistogram("lat.ns")->Record(v);
  }

  const PrometheusDoc doc = GoldenParse(RenderPrometheus(reg, nullptr));

  EXPECT_EQ(doc.types.at("dlb_images_ok_total"), "counter");
  EXPECT_DOUBLE_EQ(doc.samples.at("dlb_images_ok_total"), 42.0);

  EXPECT_EQ(doc.types.at("dlb_queue_depth"), "gauge");
  EXPECT_DOUBLE_EQ(doc.samples.at("dlb_queue_depth"), 1.0);
  // The _peak twin carries the high-watermark (Gauge::Max).
  EXPECT_DOUBLE_EQ(doc.samples.at("dlb_queue_depth_peak"), 3.0);

  EXPECT_EQ(doc.types.at("dlb_lat_ns"), "summary");
  EXPECT_GT(doc.samples.at("dlb_lat_ns{quantile=\"0.5\"}"), 0.0);
  EXPECT_GT(doc.samples.at("dlb_lat_ns{quantile=\"0.99\"}"), 0.0);
  EXPECT_DOUBLE_EQ(doc.samples.at("dlb_lat_ns_count"), 4.0);
  EXPECT_GE(doc.samples.at("dlb_lat_ns_sum"), 1000.0);
}

TEST(ExpositionTest, SamplerSeriesExportAsGauges) {
  Telemetry telemetry;
  Counter* images = telemetry.Registry().GetCounter("images");
  MetricsSampler sampler(&telemetry, {.sample_ms = 100, .history = 8});
  const uint64_t t0 = 1'000'000'000;
  sampler.SampleAt(t0);
  images->Add(250);
  sampler.SampleAt(t0 + 500'000'000);  // +0.5 s -> 500/s

  const PrometheusDoc doc =
      GoldenParse(RenderPrometheus(telemetry.Registry(), &sampler));
  EXPECT_EQ(doc.types.at("dlb_images_rate_per_s"), "gauge");
  EXPECT_DOUBLE_EQ(doc.samples.at("dlb_images_rate_per_s"), 500.0);
}

// ---------------------------------------------------------------------------
// Sampler math (deterministic timestamps)

TEST(MetricsSamplerTest, CounterRatePerWindow) {
  Telemetry telemetry;
  Counter* c = telemetry.Registry().GetCounter("stage.decode.items");
  MetricsSampler sampler(&telemetry, {.sample_ms = 100, .history = 8});

  const uint64_t t0 = 5'000'000'000;
  sampler.SampleAt(t0);
  c->Add(300);
  sampler.SampleAt(t0 + 1'000'000'000);  // 1 s window
  c->Add(100);
  sampler.SampleAt(t0 + 3'000'000'000);  // 2 s window -> 50/s

  double last = -1, high = -1;
  for (const SeriesSnapshot& s : sampler.Snapshot()) {
    if (s.name == "stage.decode.items.rate_per_s") {
      EXPECT_EQ(s.kind, SeriesKind::kRate);
      last = s.last;
      high = s.high;
    }
  }
  EXPECT_DOUBLE_EQ(last, 50.0);
  EXPECT_DOUBLE_EQ(high, 300.0);  // the 1 s window's 300/s
  EXPECT_EQ(sampler.SamplesTaken(), 3u);
}

TEST(MetricsSamplerTest, BusyNsCounterDerivesUtilization) {
  Telemetry telemetry;
  Counter* busy = telemetry.Registry().GetCounter("fpga.huffman.busy_ns");
  telemetry.Registry().GetGauge("fpga.huffman.ways")->Set(2.0);
  Counter* solo = telemetry.Registry().GetCounter("solo.busy_ns");
  MetricsSampler sampler(&telemetry, {.sample_ms = 100, .history = 8});

  const uint64_t t0 = 1'000'000'000;
  sampler.SampleAt(t0);
  busy->Add(500'000'000);  // 0.5 s busy over a 1 s window, 2 ways -> 0.25
  solo->Add(500'000'000);  // no ways gauge -> 1 way -> 0.5
  sampler.SampleAt(t0 + 1'000'000'000);

  std::map<std::string, double> last;
  for (const SeriesSnapshot& s : sampler.Snapshot()) last[s.name] = s.last;
  EXPECT_DOUBLE_EQ(last.at("fpga.huffman.utilization"), 0.25);
  EXPECT_DOUBLE_EQ(last.at("solo.utilization"), 0.5);
}

TEST(MetricsSamplerTest, GaugeWatermarkIsPerWindow) {
  Telemetry telemetry;
  Gauge* depth = telemetry.Registry().GetGauge("queue.depth");
  MetricsSampler sampler(&telemetry, {.sample_ms = 100, .history = 8});

  const uint64_t t0 = 1'000'000'000;
  depth->Set(10.0);
  depth->Set(3.0);  // spike to 10 happened inside window 1
  sampler.SampleAt(t0);
  sampler.SampleAt(t0 + 1'000'000'000);  // window 2: steady at 3

  std::vector<double> watermarks;
  for (const SeriesSnapshot& s : sampler.Snapshot(/*with_points=*/true)) {
    if (s.name == "queue.depth.watermark") {
      for (const SeriesPoint& p : s.points) watermarks.push_back(p.value);
    }
  }
  ASSERT_EQ(watermarks.size(), 2u);
  EXPECT_DOUBLE_EQ(watermarks[0], 10.0);  // spike captured
  EXPECT_DOUBLE_EQ(watermarks[1], 3.0);   // and not re-reported
}

TEST(MetricsSamplerTest, HistogramQuantileSeries) {
  Telemetry telemetry;
  Histogram* lat = telemetry.Registry().GetHistogram("stage.decode.ns");
  MetricsSampler sampler(&telemetry, {.sample_ms = 100, .history = 8});
  for (int i = 0; i < 100; ++i) lat->Record(1000);
  sampler.SampleAt(1'000'000'000);

  std::map<std::string, double> last;
  for (const SeriesSnapshot& s : sampler.Snapshot()) last[s.name] = s.last;
  EXPECT_NEAR(last.at("stage.decode.ns.p50"), 1000.0, 40.0);
  EXPECT_NEAR(last.at("stage.decode.ns.p99"), 1000.0, 40.0);
  EXPECT_TRUE(last.count("stage.decode.ns.count.rate_per_s"));
}

TEST(MetricsSamplerTest, JsonIsWellFormedAndCarriesKinds) {
  Telemetry telemetry;
  telemetry.Registry().GetCounter("n")->Add(7);
  MetricsSampler sampler(&telemetry, {.sample_ms = 100, .history = 4});
  sampler.SampleAt(1'000'000'000);
  const std::string json = sampler.Json(/*with_points=*/true);
  EXPECT_NE(json.find("\"sample_ms\":100"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":1"), std::string::npos);
  EXPECT_NE(json.find("\"n\":{\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"n.rate_per_s\":{\"kind\":\"rate\""),
            std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// ---------------------------------------------------------------------------
// HTTP server: socketless routing seam, then a real socket round trip.

TEST(MonitorServerTest, DispatchRoutesExactPaths) {
  MonitorServer server;
  server.AddHandler("/ping", [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "pong " + request.query};
  });

  HttpResponse ok = server.Dispatch({"GET", "/ping", "a=1"});
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "pong a=1");

  HttpResponse missing = server.Dispatch({"GET", "/nope", ""});
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("/ping"), std::string::npos)
      << "404 should list the registered endpoints";

  // POST routes like GET (handlers that care branch on request.method);
  // anything else is refused outright.
  HttpResponse post = server.Dispatch({"POST", "/ping", ""});
  EXPECT_EQ(post.status, 200);
  HttpResponse put = server.Dispatch({"PUT", "/ping", ""});
  EXPECT_EQ(put.status, 405);
  HttpResponse del = server.Dispatch({"DELETE", "/ping", ""});
  EXPECT_EQ(del.status, 405);
}

TEST(MonitorServerTest, SerializeProducesValidHttp11) {
  const std::string wire =
      MonitorServer::Serialize({503, "text/plain", "stalled\n"});
  EXPECT_EQ(wire.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u);
  EXPECT_NE(wire.find("Content-Length: 8\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\nstalled\n"));
}

TEST(MonitorServerTest, RealSocketRoundTrip) {
  MonitorServer::Options options;
  options.port = 0;  // ephemeral
  MonitorServer server(options);
  server.AddHandler("/hello", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "hi\n"};
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.Port(), 0);

  GetResult r = HttpGet(server.Port(), "/hello?x=1");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "hi\n");

  GetResult missing = HttpGet(server.Port(), "/other");
  EXPECT_EQ(missing.status, 404);
  EXPECT_GE(server.RequestsServed(), 2u);
  server.Stop();
  EXPECT_FALSE(server.Running());
}

// Send raw bytes (possibly not valid HTTP) and read whatever comes back.
std::string HttpRaw(int port, const std::string& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return raw;
}

TEST(MonitorServerTest, MalformedRequestLineGets400) {
  MonitorServer::Options options;
  options.port = 0;
  MonitorServer server(options);
  server.AddHandler("/hello", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "hi\n"};
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string raw = HttpRaw(server.Port(), "GARBAGE\r\n\r\n");
  EXPECT_NE(raw.find("400 Bad Request"), std::string::npos);
  server.Stop();
}

TEST(MonitorServerTest, TruncatedRequestIsReapedAndDoesNotWedge) {
  MonitorServer::Options options;
  options.port = 0;
  options.request_timeout_ms = 150;
  MonitorServer server(options);
  server.AddHandler("/hello", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "hi\n"};
  });
  ASSERT_TRUE(server.Start().ok());

  // A client that sends half a request line and then goes quiet.
  const int wedge = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(wedge, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.Port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(wedge, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_GT(::send(wedge, "GET /hel", 8, MSG_NOSIGNAL), 0);

  // Well-formed requests on other connections are still served.
  GetResult ok = HttpGet(server.Port(), "/hello");
  EXPECT_EQ(ok.status, 200);

  // The truncated connection is dropped once the request timeout passes —
  // read() observing EOF proves the server closed it, not us.
  timeval tv{2, 0};
  ::setsockopt(wedge, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[16];
  EXPECT_EQ(::read(wedge, buf, sizeof(buf)), 0)
      << "server should close a connection stuck before its header end";
  ::close(wedge);

  // And the slot is genuinely free again.
  EXPECT_EQ(HttpGet(server.Port(), "/hello").status, 200);
  server.Stop();
}

// Endpoint hardening against hostile query strings, routed through the
// deterministic Dispatch seam of a live pipeline's monitor.
TEST(MonitorHardeningTest, MalformedAndOverflowingQueriesAreHarmless) {
  core::PipelineConfig config;
  config.backend = "synthetic";
  config.options.batch_size = 4;
  config.max_images = 8;
  config.monitor_port = 0;
  config.event_log_level = "info";
  auto pipeline = core::PipelineBuilder().WithConfig(config).Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  MonitorServer* monitor = pipeline.value()->Monitor();
  ASSERT_NE(monitor, nullptr);

  // /events: garbage, zero and overflowing counts all produce a valid
  // (possibly empty) JSONL body, never a crash or a huge allocation.
  for (const char* q :
       {"n=abc", "n=0", "n=", "n=99999999999999999999999999", "n=-5",
        "nonsense&&&=1"}) {
    HttpResponse r = monitor->Dispatch({"GET", "/events", q});
    EXPECT_EQ(r.status, 200) << q;
    if (!r.body.empty()) EXPECT_EQ(r.body.front(), '{') << q;
  }

  // /profile: malformed windows fall back to defaults and the lower clamp
  // keeps hostile zero-values from degenerate windows. (Large values are
  // clamped to 30 s — not exercised here to keep the test fast.)
  for (const char* q : {"ms=0&format=json", "ms=abc&format=json",
                        "ms=20&hz=0&format=json", "ms=20&hz=abc&format=json"}) {
    HttpResponse r = monitor->Dispatch({"GET", "/profile", q});
    EXPECT_EQ(r.status, 200) << q;
    EXPECT_FALSE(r.body.empty()) << q;
    EXPECT_EQ(r.body.front(), '{') << q;
  }

  // Unknown path: 404 with a usable endpoint listing.
  HttpResponse missing = monitor->Dispatch({"GET", "/debug/nope", ""});
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("/metrics"), std::string::npos);
  EXPECT_NE(missing.body.find("/healthz"), std::string::npos);

  pipeline.value()->Shutdown();
}

// ---------------------------------------------------------------------------
// The full plane against a live pipeline fed by a network source (the
// inference_server shape), scraped over real sockets.

TEST(MonitorPlaneTest, LivePipelineScrapeAndHealthFlip) {
  auto ds = GenerateDataset([] {
    DatasetSpec spec = ImageNetLikeSpec(8);
    spec.width = 64;
    spec.height = 48;
    return spec;
  }());
  ASSERT_TRUE(ds.ok());

  BoundedQueue<NetworkImage> rx(16);
  for (size_t i = 0; i < 8; ++i) {
    auto bytes = ds.value().store->Read(ds.value().manifest.At(i));
    ASSERT_TRUE(bytes.ok());
    NetworkImage img;
    img.payload.assign(bytes.value().begin(), bytes.value().end());
    img.request_id = i;
    ASSERT_TRUE(rx.Push(std::move(img)).ok());
  }
  rx.Close();

  core::PipelineConfig config;
  config.backend = "dlbooster";
  config.options.batch_size = 4;
  config.options.resize_w = 32;
  config.options.resize_h = 32;
  config.monitor_port = 0;  // ephemeral
  config.monitor_sample_ms = 50;
  config.event_log_level = "info";
  config.watchdog_deadline_ms = 1;  // stall after 1 ms of quiet
  auto pipeline =
      core::PipelineBuilder().WithConfig(config).WithNetworkSource(&rx).Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  const int port = pipeline.value()->MonitorPort();
  ASSERT_GT(port, 0);

  size_t images = 0;
  while (true) {
    auto batch = pipeline.value()->NextBatch();
    if (!batch.ok()) break;
    images += batch.value()->OkCount();
  }
  EXPECT_EQ(images, 8u);

  // Two explicit samples give every rate series a full window.
  ASSERT_NE(pipeline.value()->Sampler(), nullptr);
  pipeline.value()->Sampler()->SampleOnce();
  pipeline.value()->Sampler()->SampleOnce();

  // /metrics: valid Prometheus text carrying stage + unit families.
  GetResult metrics = HttpGet(port, "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  const PrometheusDoc doc = GoldenParse(metrics.body);
  EXPECT_GT(doc.samples.at("dlb_stage_decode_ops_total"), 0.0);
  EXPECT_GT(doc.samples.at("dlb_stage_decode_latency_ns{quantile=\"0.5\"}"),
            0.0);
  EXPECT_GT(doc.samples.at("dlb_fpga_huffman_busy_ns_total"), 0.0);
  EXPECT_TRUE(doc.samples.count("dlb_fpga_huffman_utilization"));
  EXPECT_TRUE(doc.samples.count("dlb_pool_free_buffers"));
  EXPECT_TRUE(doc.samples.count("dlb_stage_decode_items_rate_per_s"));

  // /stats and /metrics.json: JSON bodies with the headline numbers.
  GetResult stats = HttpGet(port, "/stats");
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"backend\":\"dlbooster\""), std::string::npos);
  EXPECT_NE(stats.body.find("\"images_ok\":8"), std::string::npos);
  GetResult mjson = HttpGet(port, "/metrics.json");
  ASSERT_EQ(mjson.status, 200);
  EXPECT_NE(mjson.body.find("\"sampler\""), std::string::npos);

  // /events: JSONL tail.
  GetResult events = HttpGet(port, "/events?n=4");
  ASSERT_EQ(events.status, 200);
  if (!events.body.empty()) {
    EXPECT_EQ(events.body.front(), '{');
    EXPECT_NE(events.body.find("\"seq\":"), std::string::npos);
  }

  // /healthz: drained stream is healthy-idle...
  Watchdog* watchdog = pipeline.value()->StallWatchdog();
  ASSERT_NE(watchdog, nullptr);
  (void)watchdog->Probe();
  EXPECT_EQ(HttpGet(port, "/healthz").status, 200);

  // ...until a batch is in flight with no stage progress: Probe() (the
  // deterministic seam — the watchdog thread calls the same function)
  // latches the stall and /healthz flips to 503.
  Tracer* tracer = pipeline.value()->Tracer();
  ASSERT_NE(tracer, nullptr);
  TraceContext wedged = tracer->StartBatch();
  (void)watchdog->Probe();  // absorb any residual progress, re-arm
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto report = watchdog->Probe();
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(watchdog->CurrentlyStalled());
  GetResult sick = HttpGet(port, "/healthz");
  EXPECT_EQ(sick.status, 503);
  EXPECT_NE(sick.body.find("stall"), std::string::npos);

  // Abandoning the batch returns the plane to healthy.
  tracer->AbandonBatch(wedged);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  (void)watchdog->Probe();
  EXPECT_FALSE(watchdog->CurrentlyStalled());
  EXPECT_EQ(HttpGet(port, "/healthz").status, 200);

  pipeline.value()->Shutdown();
  EXPECT_LT(pipeline.value()->MonitorPort(), 0);
}

}  // namespace
}  // namespace dlb::telemetry
