// dlb::prof end to end, without a live sampler thread where possible:
// TickOnce() is the deterministic seam. Covers tag-stack collapsing
// ("collect;decode"), scheduling-independent stage-attribution shares
// (2 decode spinners + 1 resize spinner -> 2:1), cpu-vs-wait separation
// (a spinner is cpu-bound, a sleeper is wait-bound), tag-stack abuse
// (deep nesting, unbalanced pops), pool watermarks, the JSON shape, and
// the StageMetrics cpu/wait counters the profiler's clocks feed.
#include "telemetry/profiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "telemetry/telemetry.h"

namespace dlb::prof {
namespace {

using telemetry::Stage;

constexpr int kFetch = static_cast<int>(Stage::kFetch);
constexpr int kDecode = static_cast<int>(Stage::kDecode);
constexpr int kResize = static_cast<int>(Stage::kResize);
constexpr int kCollect = static_cast<int>(Stage::kCollect);
constexpr int kConsume = static_cast<int>(Stage::kConsume);

// A worker that pushes a fixed tag stack, signals readiness, then either
// busy-spins (on-CPU) or sleeps (off-CPU) until told to stop. Tags stay
// pushed for the worker's whole life, so every sampler tick sees them.
class TaggedWorker {
 public:
  TaggedWorker(std::vector<int> stages, bool busy) {
    thread_ = std::jthread([this, stages = std::move(stages), busy](
                               std::stop_token token) {
      for (int s : stages) PushStageTag(s);
      ready_.store(true, std::memory_order_release);
      if (busy) {
        volatile uint64_t sink = 0;
        while (!token.stop_requested()) sink = sink + 1;
      } else {
        while (!token.stop_requested()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      for (size_t i = 0; i < stages.size(); ++i) PopStageTag();
    });
    while (!ready_.load(std::memory_order_acquire)) std::this_thread::yield();
  }

  ~TaggedWorker() { thread_.request_stop(); }

 private:
  std::atomic<bool> ready_{false};
  std::jthread thread_;
};

// Drive `ticks` sampling steps with a small gap so per-tick wall deltas are
// non-zero and CPU clocks advance.
void Drive(Profiler& profiler, int ticks) {
  for (int i = 0; i < ticks; ++i) {
    profiler.TickOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  profiler.TickOnce();
}

uint64_t StageSamples(const ProfileReport& report, const std::string& name) {
  for (const auto& s : report.stages) {
    if (s.stage == name) return s.samples;
  }
  return 0;
}

const StageBreakdown* FindStage(const ProfileReport& report,
                                const std::string& name) {
  for (const auto& s : report.stages) {
    if (s.stage == name) return &s;
  }
  return nullptr;
}

TEST(ProfilerTest, NestedTagsCollapseInSpanOrder) {
  TaggedWorker worker({kCollect, kDecode}, /*busy=*/true);
  Profiler profiler;
  Drive(profiler, 4);

  const ProfileReport report = profiler.Report();
  uint64_t nested = 0;
  for (const auto& sc : report.stacks) {
    if (sc.stack == "collect;decode") nested = sc.samples;
  }
  EXPECT_GT(nested, 0u) << report.Collapsed();
  // Top-of-stack attribution: the nested samples land on decode, and the
  // collapsed text carries them for flamegraph.pl.
  EXPECT_GT(StageSamples(report, "decode"), 0u);
  EXPECT_NE(report.Collapsed().find("collect;decode "), std::string::npos);
}

TEST(ProfilerTest, StageSharesAreSchedulingIndependent) {
  // Two threads tagged decode, one tagged resize. Attribution is
  // per-thread-per-tick, so decode must collect ~2/3 of the
  // decode+resize samples no matter how the spinners get scheduled.
  TaggedWorker d1({kDecode}, /*busy=*/true);
  TaggedWorker d2({kDecode}, /*busy=*/true);
  TaggedWorker r1({kResize}, /*busy=*/true);

  Profiler profiler;
  Drive(profiler, 30);

  const ProfileReport report = profiler.Report();
  const double decode = static_cast<double>(StageSamples(report, "decode"));
  const double resize = static_cast<double>(StageSamples(report, "resize"));
  ASSERT_GT(decode, 0.0);
  ASSERT_GT(resize, 0.0);
  const double share = decode / (decode + resize);
  EXPECT_GT(share, 0.55) << report.Json();
  EXPECT_LT(share, 0.78) << report.Json();
}

TEST(ProfilerTest, SeparatesCpuFromWait) {
  TaggedWorker spinner({kDecode}, /*busy=*/true);
  TaggedWorker sleeper({kConsume}, /*busy=*/false);

  Profiler profiler;
  Drive(profiler, 25);

  const ProfileReport report = profiler.Report();
  const StageBreakdown* decode = FindStage(report, "decode");
  const StageBreakdown* consume = FindStage(report, "consume");
  ASSERT_NE(decode, nullptr);
  ASSERT_NE(consume, nullptr);

  // The sleeper burns essentially no CPU: its window must be wait-dominant.
  const double consume_total =
      static_cast<double>(consume->cpu_ns + consume->wait_ns);
  ASSERT_GT(consume_total, 0.0);
  EXPECT_GT(consume->wait_ns / consume_total, 0.7) << report.Json();

  // The spinner's absolute cpu share depends on how loaded the machine is
  // (an oversubscribed CI box deschedules it most of the time), so assert
  // the scheduling-independent contrast instead: whatever CPU the spinner
  // got dwarfs the sleeper's, over identical windows.
  const double decode_total =
      static_cast<double>(decode->cpu_ns + decode->wait_ns);
  ASSERT_GT(decode_total, 0.0);
  const double decode_share = static_cast<double>(decode->cpu_ns) / decode_total;
  const double consume_share =
      static_cast<double>(consume->cpu_ns) / consume_total;
  EXPECT_GT(decode->cpu_ns, 0u);
  EXPECT_GT(decode_share, 3.0 * consume_share) << report.Json();
}

TEST(ProfilerTest, DeepAndUnbalancedTagsAreSafe) {
  // Deeper-than-kMaxTagDepth pushes stay balanced and samplable; extra
  // pops are ignored. Run a sampler across the abuse to shake out torn
  // publications under tsan.
  Profiler profiler;
  profiler.TickOnce();
  for (int i = 0; i < 20; ++i) PushStageTag(kFetch);
  profiler.TickOnce();

  const ProfileReport deep = profiler.Report();
  for (const auto& sc : deep.stacks) {
    // Stacks clamp at kMaxTagDepth frames (depth-1 separators each).
    const long seps = std::count(sc.stack.begin(), sc.stack.end(), ';');
    EXPECT_LT(seps, kMaxTagDepth) << sc.stack;
  }

  for (int i = 0; i < 25; ++i) PopStageTag();  // 5 extra: no-ops
  profiler.TickOnce();
  PushStageTag(kResize);  // stack works again after the abuse
  profiler.TickOnce();
  PopStageTag();
  SUCCEED();
}

TEST(ProfilerTest, StartStopLifecycleAndCounters) {
  TaggedWorker worker({kFetch}, /*busy=*/false);
  Profiler profiler({.interval_us = 500});
  EXPECT_FALSE(profiler.Running());
  profiler.Start();
  EXPECT_TRUE(profiler.Running());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  profiler.Stop();
  EXPECT_FALSE(profiler.Running());

  const ProfileReport report = profiler.Report();
  EXPECT_GT(report.duration_ns, 0u);
  EXPECT_GT(report.ticks, 1u);
  EXPECT_GT(report.samples, 0u);
  EXPECT_GE(report.threads, 1u);
}

TEST(ProfilerTest, PoolWatermarksTrackRegistryGauges) {
  MetricRegistry registry;
  registry.GetGauge("pool.buffers")->Set(8.0);
  registry.GetGauge("pool.free_buffers")->Set(2.0);
  registry.GetGauge("pool.full_buffers")->Set(5.0);

  const ProfileReport report =
      Profiler::ProfileFor(/*duration_ms=*/30, {}, &registry);
  EXPECT_TRUE(report.pool.present);
  EXPECT_DOUBLE_EQ(report.pool.buffers, 8.0);
  EXPECT_LE(report.pool.free_min, 2.0);
  EXPECT_GE(report.pool.full_max, 5.0);

  // No pool gauges -> watermarks absent, not zero-valued garbage.
  MetricRegistry empty;
  const ProfileReport none = Profiler::ProfileFor(10, {}, &empty);
  EXPECT_FALSE(none.pool.present);
}

TEST(ProfilerTest, JsonCarriesStacksStagesAndPool) {
  TaggedWorker worker({kDecode}, /*busy=*/true);
  MetricRegistry registry;
  registry.GetGauge("pool.buffers")->Set(4.0);

  Profiler profiler({}, &registry);
  Drive(profiler, 4);
  const std::string json = profiler.Report().Json();
  EXPECT_NE(json.find("\"stacks\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stages\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"decode\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cpu_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"wait_ns\""), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// StageMetrics cpu/wait plumbing — the counters the profiler's per-thread
// clocks feed through RecordSpan/RecordTimed.

telemetry::StageSnapshot SnapshotFor(const telemetry::Telemetry& t,
                                     Stage stage) {
  for (const auto& s : t.SnapshotStages()) {
    if (s.stage == stage) return s;
  }
  return {};
}

TEST(StageCpuWaitTest, SplitsSpanIntoCpuAndWait) {
  telemetry::Telemetry t;
  // 10 ms span, 4 ms of it on-CPU -> 6 ms wait.
  t.RecordSpan(Stage::kDecode, 0, 10'000'000, 1, 4'000'000);
  const auto snap = SnapshotFor(t, Stage::kDecode);
  EXPECT_EQ(snap.cpu_ns, 4'000'000u);
  EXPECT_EQ(snap.wait_ns, 6'000'000u);
}

TEST(StageCpuWaitTest, ClampsCpuToSpanDuration) {
  telemetry::Telemetry t;
  // Clock skew can report more CPU than wall; the split must stay sane.
  t.RecordSpan(Stage::kResize, 0, 5'000'000, 1, 9'000'000);
  const auto snap = SnapshotFor(t, Stage::kResize);
  EXPECT_EQ(snap.cpu_ns, 5'000'000u);
  EXPECT_EQ(snap.wait_ns, 0u);
}

TEST(StageCpuWaitTest, UnknownCpuLeavesCountersUntouched) {
  telemetry::Telemetry t;
  // Cross-thread spans (FPGA submit->complete) cannot measure one
  // thread's CPU: kCpuUnknown must not fabricate cpu or wait time.
  t.RecordSpan(Stage::kFetch, 0, 3'000'000, 1, telemetry::kCpuUnknown);
  const auto snap = SnapshotFor(t, Stage::kFetch);
  EXPECT_EQ(snap.cpu_ns, 0u);
  EXPECT_EQ(snap.wait_ns, 0u);
  EXPECT_EQ(snap.busy_ns, 3'000'000u);
}

TEST(StageCpuWaitTest, StageTimerMeasuresSleepAsWait) {
  telemetry::Telemetry t;
  {
    telemetry::StageTimer timer(Stage::kConsume);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    t.RecordTimed(timer);
  }
  const auto snap = SnapshotFor(t, Stage::kConsume);
  EXPECT_GT(snap.wait_ns, 10'000'000u);  // most of the 20 ms slept
  EXPECT_LT(snap.cpu_ns, snap.wait_ns);
}

}  // namespace
}  // namespace dlb::prof
