// SLO spec grammar + burn-rate engine, evaluated deterministically through
// the SampleAt/EvaluateAt seams (no background threads, no wall clock).
#include "telemetry/slo.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/event_log.h"
#include "telemetry/metrics_sampler.h"
#include "telemetry/telemetry.h"

namespace dlb::slo {
namespace {

TEST(SloSpecTest, ParsesQuantileRatioAndRawSeries) {
  auto spec = ParseSloSpec(
      "infer_p99<8ms/30s,decode_errors<0.1%,fpga.ways_quarantined<1");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  ASSERT_EQ(spec.value().objectives.size(), 3u);

  const SloObjective& q = spec.value().objectives[0];
  EXPECT_EQ(q.name, "infer_p99");
  EXPECT_EQ(q.kind, ObjectiveKind::kQuantile);
  EXPECT_EQ(q.series, "stage.consume.latency_ns.p99");
  EXPECT_EQ(q.op, '<');
  EXPECT_DOUBLE_EQ(q.threshold, 8e6);  // 8ms in ns
  EXPECT_EQ(q.window_ms, 30'000u);

  const SloObjective& r = spec.value().objectives[1];
  EXPECT_EQ(r.kind, ObjectiveKind::kRatio);
  EXPECT_EQ(r.numerator, "decode.errors");
  EXPECT_EQ(r.denominator, "stage.decode.items");
  EXPECT_DOUBLE_EQ(r.threshold, 0.001);  // 0.1% as a fraction
  EXPECT_EQ(r.window_ms, 30'000u);       // default window

  const SloObjective& s = spec.value().objectives[2];
  EXPECT_EQ(s.kind, ObjectiveKind::kSeries);
  EXPECT_EQ(s.series, "fpga.ways_quarantined");
  EXPECT_DOUBLE_EQ(s.threshold, 1.0);
}

TEST(SloSpecTest, StageQuantilesWindowUnitsAndAboveObjectives) {
  auto spec = ParseSloSpec("decode_p95<500us/2m,throughput.images_per_s>100/10");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  ASSERT_EQ(spec.value().objectives.size(), 2u);
  EXPECT_EQ(spec.value().objectives[0].series, "stage.decode.latency_ns.p95");
  EXPECT_DOUBLE_EQ(spec.value().objectives[0].threshold, 500e3);
  EXPECT_EQ(spec.value().objectives[0].window_ms, 120'000u);  // 2m
  EXPECT_EQ(spec.value().objectives[1].op, '>');
  EXPECT_EQ(spec.value().objectives[1].window_ms, 10'000u);  // bare = seconds
}

TEST(SloSpecTest, EmptySpecIsOff) {
  auto spec = ParseSloSpec("");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec.value().Any());
}

TEST(SloSpecTest, RejectsMalformedSpecs) {
  // Unknown stage, missing op, bad threshold, bad units, ratio/duration and
  // quantile/percent mismatches — all kInvalidArgument, never a crash.
  for (const char* bad :
       {"bogus_p99<1ms", "infer_p99", "<1ms", "infer_p99<abc",
        "infer_p99<1parsec", "infer_p99<1ms/1h", "infer_p99<1ms/0",
        "decode_errors<10ms", "decode_errors<5", "infer_p99<5%"}) {
    auto spec = ParseSloSpec(bad);
    EXPECT_FALSE(spec.ok()) << "accepted: " << bad;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(SloSpecTest, EnvOverride) {
  ::setenv("DLB_SLO", "infer_p99<2ms/5s", 1);
  auto spec = SloSpecFromEnv();
  ::unsetenv("DLB_SLO");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec.value().objectives.size(), 1u);
  EXPECT_EQ(spec.value().objectives[0].series, "stage.consume.latency_ns.p99");

  auto off = SloSpecFromEnv();
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off.value().Any());
}

// Drive a quantile objective from ok to burning with hand-fed samples.
TEST(SloEngineTest, QuantileObjectiveBurnsAndFiresBreachOnce) {
  telemetry::Telemetry sink;
  sink.EnableEvents(64, telemetry::EventLevel::kInfo);
  telemetry::MetricsSampler sampler(&sink);
  auto spec = ParseSloSpec("infer_p99<1ms/1s");
  ASSERT_TRUE(spec.ok());
  SloEngine engine(&sink, &sampler, std::move(spec).value());

  std::vector<SloBreach> breaches;
  engine.OnBreach([&breaches](const SloBreach& b) { breaches.push_back(b); });

  Histogram* lat = sink.Registry().GetHistogram("stage.consume.latency_ns");
  uint64_t t = 1'000'000'000;  // arbitrary epoch
  const uint64_t step = 250'000'000;  // 250ms cadence

  // Healthy: every window sample sees a sub-threshold p99.
  for (int i = 0; i < 8; ++i) {
    lat->Record(100'000);  // 0.1ms
    t += step;
    sampler.SampleAt(t);
  }
  auto statuses = engine.EvaluateAt(t);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].state, SloState::kOk);
  EXPECT_DOUBLE_EQ(statuses[0].burn_fast, 0.0);
  EXPECT_FALSE(engine.AnyBurning());

  // Latency regression: the cumulative p99 jumps over the threshold and
  // every subsequent sample violates — fast window majority + slow window
  // confirmation = burning.
  for (int i = 0; i < 8; ++i) {
    lat->RecordN(5'000'000, 100);  // 5ms, swamping the early mass
    t += step;
    sampler.SampleAt(t);
  }
  statuses = engine.EvaluateAt(t);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].state, SloState::kBurning);
  EXPECT_GE(statuses[0].burn_fast, 0.5);
  EXPECT_GT(statuses[0].burn_slow, 0.0);
  EXPECT_GE(statuses[0].value, 1e6);
  EXPECT_TRUE(engine.AnyBurning());
  EXPECT_EQ(engine.Breaches(), 1u);
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].objective, "infer_p99");
  EXPECT_NE(breaches[0].Describe().find("infer_p99"), std::string::npos);

  // Still burning on the next evaluation — but the breach callback is
  // edge-triggered, not level-triggered.
  t += step;
  sampler.SampleAt(t);
  statuses = engine.EvaluateAt(t);
  EXPECT_EQ(statuses[0].state, SloState::kBurning);
  EXPECT_EQ(engine.Breaches(), 1u);
  EXPECT_EQ(breaches.size(), 1u);

  // The state landed in the exported gauges, counters and the event log.
  MetricRegistry& reg = sink.Registry();
  EXPECT_DOUBLE_EQ(reg.GetGauge("slo.infer_p99.state")->Value(), 2.0);
  EXPECT_EQ(reg.GetCounter("slo.breaches")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("slo.infer_p99.breaches")->Value(), 1u);
  bool saw_event = false;
  for (const telemetry::Event& e : sink.events()->Snapshot()) {
    if (e.type == telemetry::EventType::kSloBreach) saw_event = true;
  }
  EXPECT_TRUE(saw_event);
}

// A raw-series objective recovers to ok when the series drops back under
// the threshold and the violating points age out of both windows.
TEST(SloEngineTest, SeriesObjectiveRecovers) {
  telemetry::Telemetry sink;
  telemetry::MetricsSampler sampler(&sink);
  auto spec = ParseSloSpec("fpga.ways_quarantined<1/1s");
  ASSERT_TRUE(spec.ok());
  SloEngine engine(&sink, &sampler, std::move(spec).value());

  Gauge* ways = sink.Registry().GetGauge("fpga.ways_quarantined");
  uint64_t t = 1'000'000'000;
  const uint64_t step = 250'000'000;

  ways->Set(2.0);  // violating
  for (int i = 0; i < 8; ++i) {
    t += step;
    sampler.SampleAt(t);
  }
  auto statuses = engine.EvaluateAt(t);
  EXPECT_EQ(statuses[0].state, SloState::kBurning);

  ways->Set(0.0);  // healthy again; age the violations out of the slow window
  for (int i = 0; i < 24; ++i) {
    t += step;
    sampler.SampleAt(t);
  }
  statuses = engine.EvaluateAt(t);
  EXPECT_EQ(statuses[0].state, SloState::kOk);
  EXPECT_FALSE(engine.AnyBurning());
}

// decode_errors is a windowed delta ratio: only new failures relative to
// new decode flow count against the objective.
TEST(SloEngineTest, RatioObjectiveUsesWindowedDeltas) {
  telemetry::Telemetry sink;
  telemetry::MetricsSampler sampler(&sink);
  auto spec = ParseSloSpec("decode_errors<10%/1s");
  ASSERT_TRUE(spec.ok());
  SloEngine engine(&sink, &sampler, std::move(spec).value());

  Counter* errors = sink.Registry().GetCounter("decode.errors");
  Counter* items = sink.Registry().GetCounter("stage.decode.items");
  uint64_t t = 1'000'000'000;
  const uint64_t step = 250'000'000;

  // Clean flow: lots of items, no errors.
  for (int i = 0; i < 8; ++i) {
    items->Add(100);
    t += step;
    sampler.SampleAt(t);
  }
  auto statuses = engine.EvaluateAt(t);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].state, SloState::kOk);
  EXPECT_DOUBLE_EQ(statuses[0].value, 0.0);

  // Error storm: half the new flow fails — far over 10%.
  for (int i = 0; i < 8; ++i) {
    items->Add(100);
    errors->Add(50);
    t += step;
    sampler.SampleAt(t);
  }
  statuses = engine.EvaluateAt(t);
  EXPECT_EQ(statuses[0].state, SloState::kBurning);
  EXPECT_GT(statuses[0].value, 0.1);

  // Storm over: fresh windows see clean deltas again.
  for (int i = 0; i < 24; ++i) {
    items->Add(100);
    t += step;
    sampler.SampleAt(t);
  }
  statuses = engine.EvaluateAt(t);
  EXPECT_EQ(statuses[0].state, SloState::kOk);
}

TEST(SloEngineTest, NoSamplesMeansOkNotWarning) {
  telemetry::Telemetry sink;
  telemetry::MetricsSampler sampler(&sink);
  auto spec = ParseSloSpec("infer_p99<1ms/1s");
  ASSERT_TRUE(spec.ok());
  SloEngine engine(&sink, &sampler, std::move(spec).value());
  auto statuses = engine.EvaluateAt(telemetry::NowNs());
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].state, SloState::kOk);
  EXPECT_EQ(statuses[0].samples, 0u);
}

TEST(SloEngineTest, JsonCarriesSpecAndObjectives) {
  telemetry::Telemetry sink;
  telemetry::MetricsSampler sampler(&sink);
  auto spec = ParseSloSpec("infer_p99<8ms/30s,decode_errors<1%");
  ASSERT_TRUE(spec.ok());
  SloEngine engine(&sink, &sampler, std::move(spec).value());
  engine.EvaluateOnce();
  const std::string json = engine.Json();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("infer_p99<8ms/30s"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"infer_p99\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"decode_errors\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"ok\""), std::string::npos);
}

TEST(SloEngineTest, BackgroundThreadEvaluates) {
  telemetry::Telemetry sink;
  telemetry::MetricsSampler sampler(&sink, {.sample_ms = 5});
  auto spec = ParseSloSpec("infer_p99<1ms/1s");
  ASSERT_TRUE(spec.ok());
  SloEngine engine(&sink, &sampler, std::move(spec).value(),
                   SloEngineOptions{.eval_ms = 5});
  sampler.Start();
  engine.Start();
  for (int i = 0; i < 200 && engine.Evaluations() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  engine.Stop();
  sampler.Stop();
  EXPECT_GE(engine.Evaluations(), 1u);
}

}  // namespace
}  // namespace dlb::slo
