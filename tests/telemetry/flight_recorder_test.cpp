// Flight recorder: bundle contents, atomic publication, retention, rate
// limiting and queue draining on Stop().
#include "telemetry/flight_recorder.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "telemetry/event_log.h"
#include "telemetry/metrics_sampler.h"
#include "telemetry/stage_tag.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace dlb::flight {
namespace {

namespace fs = std::filesystem;

// CI sets DLB_FLIGHT_ARTIFACT_DIR to a workspace path so bundles written by
// a failing run get uploaded as artifacts; locally they live under TempDir.
std::string FreshDir(const std::string& tag) {
  std::string base = ::testing::TempDir();
  if (const char* env = std::getenv("DLB_FLIGHT_ARTIFACT_DIR");
      env != nullptr && env[0] != '\0') {
    base = env;
  }
  const std::string dir = base + "/dlb_flight_" + tag;
  fs::remove_all(dir);
  return dir;
}

std::string Slurp(const fs::path& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// A telemetry hub with a span, an event and a metric in flight, so bundles
// have something real to capture.
void Populate(telemetry::Telemetry* sink) {
  sink->EnableTracing(1024);
  sink->EnableEvents(256, telemetry::EventLevel::kInfo);
  const telemetry::TraceContext ctx = sink->tracer()->StartBatch();
  const uint64_t t0 = telemetry::NowNs();
  sink->RecordSpan(telemetry::Stage::kDecode, t0, t0 + 1'000'000, 4, ctx,
                   telemetry::Subsystem::kFpga);
  sink->tracer()->EndBatch(ctx, 4);
  sink->events()->Log(telemetry::EventType::kDecodeError, 7, 2, 1);
  sink->Registry().GetCounter("decode.errors")->Add(3);
}

TEST(FlightRecorderTest, WriteBundleNowCapturesAllSections) {
  telemetry::Telemetry sink;
  Populate(&sink);
  telemetry::MetricsSampler sampler(&sink);
  sampler.SampleAt(telemetry::NowNs());

  FlightOptions options;
  options.dir = FreshDir("contents");
  options.profile_ms = 20;
  FlightRecorder recorder(&sink, options);
  recorder.AttachSampler(&sampler);
  recorder.SetTopologyProvider([] { return std::string("backend topo"); });
  recorder.SetStatsProvider([] { return std::string("{\"batches\":1}"); });

  auto bundle = recorder.WriteBundleNow(TriggerKind::kManual, "unit test");
  ASSERT_TRUE(bundle.ok()) << bundle.status().message();
  const fs::path dir = bundle.value();
  EXPECT_TRUE(fs::is_directory(dir));

  const std::string manifest = Slurp(dir / "manifest.json");
  EXPECT_NE(manifest.find("\"trigger\":\"manual\""), std::string::npos);
  EXPECT_NE(manifest.find("\"detail\":\"unit test\""), std::string::npos);
  EXPECT_NE(manifest.find("\"buildinfo\":{"), std::string::npos);
  EXPECT_NE(manifest.find("\"format_version\":1"), std::string::npos);

  const std::string trace = Slurp(dir / "trace.json");
  EXPECT_NE(trace.find("traceEvents"), std::string::npos);
  EXPECT_NE(trace.find("decode"), std::string::npos);

  const std::string events = Slurp(dir / "events.jsonl");
  EXPECT_NE(events.find("decode_error"), std::string::npos);

  EXPECT_NE(Slurp(dir / "metrics.json").find("decode.errors"),
            std::string::npos);
  EXPECT_FALSE(Slurp(dir / "series.json").empty());
  EXPECT_NE(Slurp(dir / "profile.json").find("samples"), std::string::npos);
  EXPECT_EQ(Slurp(dir / "topology.txt"), "backend topo");
  EXPECT_EQ(Slurp(dir / "stats.json"), "{\"batches\":1}");

  // Published atomically: no temp dir left behind.
  for (const fs::directory_entry& e : fs::directory_iterator(options.dir)) {
    EXPECT_EQ(e.path().filename().string().rfind(".", 0), std::string::npos)
        << "leftover temp dir: " << e.path();
  }
  EXPECT_EQ(recorder.BundlesWritten(), 1u);
  EXPECT_EQ(sink.Registry().GetCounter("flight.bundles")->Value(), 1u);
  fs::remove_all(options.dir);
}

TEST(FlightRecorderTest, RetentionDeletesOldestBundles) {
  telemetry::Telemetry sink;
  FlightOptions options;
  options.dir = FreshDir("retention");
  options.max_bundles = 2;
  options.profile_ms = 0;  // keep the test fast
  FlightRecorder recorder(&sink, options);

  std::string first;
  for (int i = 0; i < 3; ++i) {
    auto bundle =
        recorder.WriteBundleNow(TriggerKind::kManual, "n" + std::to_string(i));
    ASSERT_TRUE(bundle.ok());
    if (i == 0) first = bundle.value();
  }
  const std::vector<BundleInfo> bundles = recorder.Bundles();
  ASSERT_EQ(bundles.size(), 2u);
  EXPECT_FALSE(fs::exists(first)) << "oldest bundle should be deleted";
  fs::remove_all(options.dir);
}

TEST(FlightRecorderTest, AutomatedTriggersAreRateLimitedManualIsNot) {
  telemetry::Telemetry sink;
  FlightOptions options;
  options.dir = FreshDir("ratelimit");
  options.min_interval_ms = 60'000;  // nothing automated gets through twice
  options.profile_ms = 0;
  FlightRecorder recorder(&sink, options);

  // Not running yet: suppressed.
  EXPECT_FALSE(recorder.Trigger(TriggerKind::kSloBreach, "early"));

  recorder.Start();
  EXPECT_TRUE(recorder.Trigger(TriggerKind::kSloBreach, "first"));
  EXPECT_FALSE(recorder.Trigger(TriggerKind::kRetryExhausted, "storm"))
      << "second automated trigger inside the interval must be suppressed";
  EXPECT_TRUE(recorder.Trigger(TriggerKind::kManual, "operator"))
      << "manual triggers bypass the rate limit";
  recorder.Stop();  // drains the queue before returning

  EXPECT_EQ(recorder.BundlesWritten(), 2u);
  EXPECT_GE(recorder.TriggersSuppressed(), 2u);
  EXPECT_GE(sink.Registry().GetCounter("flight.suppressed")->Value(), 2u);
  ASSERT_EQ(recorder.Bundles().size(), 2u);
  EXPECT_NE(recorder.Bundles()[0].name.find("slo_breach"), std::string::npos);
  EXPECT_NE(recorder.Bundles()[1].name.find("manual"), std::string::npos);
  fs::remove_all(options.dir);
}

TEST(FlightRecorderTest, ListJsonEmbedsManifests) {
  telemetry::Telemetry sink;
  FlightOptions options;
  options.dir = FreshDir("listjson");
  options.profile_ms = 0;
  FlightRecorder recorder(&sink, options);
  ASSERT_TRUE(
      recorder.WriteBundleNow(TriggerKind::kQuarantine, "idct way 3").ok());

  const std::string json = recorder.ListJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"trigger\":\"quarantine\""), std::string::npos);
  EXPECT_NE(json.find("idct way 3"), std::string::npos);
  fs::remove_all(options.dir);
}

TEST(FlightRecorderTest, BundleWrittenEventIsLogged) {
  telemetry::Telemetry sink;
  sink.EnableEvents(64, telemetry::EventLevel::kInfo);
  FlightOptions options;
  options.dir = FreshDir("event");
  options.profile_ms = 0;
  FlightRecorder recorder(&sink, options);
  ASSERT_TRUE(recorder.WriteBundleNow(TriggerKind::kWatchdogStall, "x").ok());

  bool saw = false;
  for (const telemetry::Event& e : sink.events()->Snapshot()) {
    if (e.type == telemetry::EventType::kBundleWritten) {
      saw = true;
      EXPECT_EQ(e.arg0,
                static_cast<uint64_t>(TriggerKind::kWatchdogStall));
    }
  }
  EXPECT_TRUE(saw);
  fs::remove_all(options.dir);
}

}  // namespace
}  // namespace dlb::flight
