// Tests for the batch tracing stack: TraceContext propagation, the Tracer's
// in-flight accounting, the structured EventLog, the stall Watchdog and the
// Chrome trace exporter.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "telemetry/event_log.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "telemetry/trace_exporter.h"
#include "telemetry/watchdog.h"

namespace dlb::telemetry {
namespace {

TEST(TraceContextTest, DefaultDisabledAndChildKeepsIdentity) {
  TraceContext ctx;
  EXPECT_FALSE(ctx.Enabled());

  Tracer tracer;
  const TraceContext live = tracer.StartBatch();
  EXPECT_TRUE(live.Enabled());
  EXPECT_EQ(live.trace_id, tracer.TraceId());
  EXPECT_EQ(live.batch_id, 1u);

  const TraceContext child = live.Child(42);
  EXPECT_EQ(child.trace_id, live.trace_id);
  EXPECT_EQ(child.batch_id, live.batch_id);
  EXPECT_EQ(child.parent_span, 42u);
  // Child() does not mutate the parent context.
  EXPECT_EQ(live.parent_span, tracer.InFlightBatches()[0].root_span);
}

TEST(TracerTest, SpanChainAndRootOnEndBatch) {
  Tracer tracer(1 << 10);
  const TraceContext ctx = tracer.StartBatch();
  ASSERT_EQ(tracer.InFlightBatches().size(), 1u);

  const uint64_t t0 = NowNs();
  const uint64_t fetch =
      tracer.RecordSpan(ctx, Stage::kFetch, Subsystem::kHostbridge, 0, t0,
                        t0 + 100, 1);
  ASSERT_NE(fetch, 0u);
  const uint64_t decode =
      tracer.RecordSpan(ctx.Child(fetch), Stage::kDecode, Subsystem::kFpga, 3,
                        t0 + 100, t0 + 500, 1);
  ASSERT_NE(decode, 0u);
  tracer.EndBatch(ctx, 1);

  EXPECT_EQ(tracer.BatchesCompleted(), 1u);
  EXPECT_TRUE(tracer.InFlightBatches().empty());

  const std::vector<TraceSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);  // fetch + decode + root
  const auto root = std::find_if(spans.begin(), spans.end(),
                                 [](const TraceSpan& s) { return s.root; });
  ASSERT_NE(root, spans.end());
  EXPECT_EQ(root->batch_id, ctx.batch_id);
  for (const TraceSpan& s : spans) {
    if (s.span_id == fetch) EXPECT_EQ(s.parent_span, root->span_id);
    if (s.span_id == decode) {
      EXPECT_EQ(s.parent_span, fetch);
      EXPECT_EQ(s.subsystem, Subsystem::kFpga);
      EXPECT_EQ(s.tid, 3u);
    }
  }
}

TEST(TracerTest, DeadContextRecordsNothing) {
  Tracer tracer;
  const TraceContext dead;  // trace_id == 0
  EXPECT_EQ(tracer.RecordSpan(dead, Stage::kFetch, Subsystem::kCore, 0, 1, 2),
            0u);
  tracer.EndBatch(dead, 1);
  tracer.AbandonBatch(dead);
  EXPECT_EQ(tracer.SpansRecorded(), 0u);
  EXPECT_EQ(tracer.BatchesCompleted(), 0u);
}

TEST(TracerTest, AbandonRetiresWithoutRootSpan) {
  Tracer tracer;
  const TraceContext ctx = tracer.StartBatch();
  tracer.AbandonBatch(ctx);
  EXPECT_TRUE(tracer.InFlightBatches().empty());
  EXPECT_EQ(tracer.BatchesAbandoned(), 1u);
  EXPECT_TRUE(tracer.Spans().empty());
}

// The satellite test: many worker threads minting and completing batches
// concurrently (the dispatcher/backend-worker shape). Parent/child ids must
// stay consistent and no span may be orphaned.
TEST(TracerTest, ConcurrentPropagationNoOrphans) {
  constexpr int kThreads = 4;
  constexpr int kBatchesPerThread = 16;
  constexpr int kSlotsPerBatch = 4;
  Tracer tracer(1 << 12);  // 4096 slots >> 4*16*(1+4*3) spans: no eviction

  std::vector<std::jthread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&tracer, w] {
      for (int b = 0; b < kBatchesPerThread; ++b) {
        const TraceContext ctx = tracer.StartBatch();
        for (int i = 0; i < kSlotsPerBatch; ++i) {
          const uint64_t t = NowNs();
          const uint64_t fetch = tracer.RecordSpan(
              ctx, Stage::kFetch, Subsystem::kHostbridge,
              static_cast<uint32_t>(w), t, t + 10, 1);
          const uint64_t decode =
              tracer.RecordSpan(ctx.Child(fetch), Stage::kDecode,
                                Subsystem::kFpga, static_cast<uint32_t>(w),
                                t + 10, t + 20, 1);
          tracer.RecordSpan(ctx.Child(decode), Stage::kResize,
                            Subsystem::kFpga, static_cast<uint32_t>(w),
                            t + 20, t + 30, 1);
        }
        tracer.EndBatch(ctx, kSlotsPerBatch);
      }
    });
  }
  workers.clear();  // join

  EXPECT_EQ(tracer.BatchesStarted(),
            static_cast<uint64_t>(kThreads * kBatchesPerThread));
  EXPECT_EQ(tracer.BatchesCompleted(),
            static_cast<uint64_t>(kThreads * kBatchesPerThread));
  EXPECT_TRUE(tracer.InFlightBatches().empty());

  const std::vector<TraceSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(),
            static_cast<size_t>(kThreads * kBatchesPerThread *
                                (1 + kSlotsPerBatch * 3)));

  // Index span ids per batch; every span id must be unique.
  std::map<uint64_t, std::set<uint64_t>> ids_by_batch;
  std::set<uint64_t> all_ids;
  for (const TraceSpan& s : spans) {
    EXPECT_EQ(s.trace_id, tracer.TraceId());
    EXPECT_TRUE(all_ids.insert(s.span_id).second)
        << "duplicate span id " << s.span_id;
    ids_by_batch[s.batch_id].insert(s.span_id);
  }
  EXPECT_EQ(ids_by_batch.size(),
            static_cast<size_t>(kThreads * kBatchesPerThread));

  // No orphans: every non-root parent resolves within the same batch, and
  // each batch has exactly one root.
  std::map<uint64_t, int> roots;
  for (const TraceSpan& s : spans) {
    if (s.root) {
      ++roots[s.batch_id];
      continue;
    }
    EXPECT_TRUE(ids_by_batch[s.batch_id].count(s.parent_span))
        << "orphan span " << s.span_id << " (batch " << s.batch_id
        << ", parent " << s.parent_span << ")";
  }
  for (const auto& [batch, n] : roots) EXPECT_EQ(n, 1) << "batch " << batch;
}

TEST(RenderSpanTreeTest, IndentsChildrenUnderParents) {
  Tracer tracer;
  const TraceContext ctx = tracer.StartBatch();
  const uint64_t t0 = NowNs();
  const uint64_t fetch = tracer.RecordSpan(ctx, Stage::kFetch,
                                           Subsystem::kHostbridge, 0, t0,
                                           t0 + 1000, 2);
  tracer.RecordSpan(ctx.Child(fetch), Stage::kDecode, Subsystem::kFpga, 1,
                    t0 + 1000, t0 + 3000, 2);
  tracer.EndBatch(ctx, 2);

  const std::string tree = RenderSpanTree(tracer.Spans(), ctx.batch_id);
  EXPECT_NE(tree.find("batch 1"), std::string::npos) << tree;
  EXPECT_NE(tree.find("fetch"), std::string::npos) << tree;
  EXPECT_NE(tree.find("decode"), std::string::npos) << tree;
  // decode is nested one level deeper than fetch.
  EXPECT_LT(tree.find("fetch"), tree.find("decode"));
}

TEST(EventLogTest, LevelFilterAndCounters) {
  EventLog log(64, EventLevel::kInfo);
  log.Log(EventType::kBatchAdmitted, 1);   // debug: dropped
  log.Log(EventType::kPoolExhausted, 0, 7);  // info: kept
  log.Log(EventType::kStallDetected, 0, 2000);  // warn: kept
  EXPECT_EQ(log.TotalLogged(), 2u);
  const std::vector<Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kPoolExhausted);
  EXPECT_EQ(events[0].arg0, 7u);
  EXPECT_EQ(events[1].type, EventType::kStallDetected);
}

TEST(EventLogTest, RenderTextAndJson) {
  EventLog log(64, EventLevel::kDebug);
  log.Log(EventType::kBatchCompleted, 5, 31, 1);
  const std::vector<Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  const std::string line = EventLog::Render(events[0], events[0].ts_ns);
  EXPECT_NE(line.find("batch_completed"), std::string::npos) << line;
  EXPECT_NE(line.find("batch=5"), std::string::npos) << line;
  const std::string json = EventLog::RenderJson(events[0]);
  EXPECT_NE(json.find("\"type\":\"batch_completed\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"batch\":5"), std::string::npos) << json;
}

TEST(EventLogTest, ParseLevel) {
  EXPECT_EQ(ParseEventLevel("off").value(), EventLevel::kOff);
  EXPECT_EQ(ParseEventLevel("warn").value(), EventLevel::kWarn);
  EXPECT_EQ(ParseEventLevel("info").value(), EventLevel::kInfo);
  EXPECT_EQ(ParseEventLevel("debug").value(), EventLevel::kDebug);
  EXPECT_FALSE(ParseEventLevel("verbose").ok());
}

// Deterministic watchdog check via Probe(): a stage makes progress, then a
// batch wedges in flight past the deadline -> exactly one report, with the
// stalled stages and the partial span tree.
TEST(WatchdogTest, FiresOnInjectedStallAndRearms) {
  Telemetry sink;
  Tracer* tracer = sink.EnableTracing(1 << 10);
  sink.EnableEvents(64, EventLevel::kDebug);

  WatchdogOptions options;
  options.deadline_ms = 5;
  Watchdog watchdog(&sink, options);  // thread never started: Probe() only

  // Progress happens, then a batch is admitted and its decode starts...
  const TraceContext ctx = tracer->StartBatch();
  const uint64_t t0 = NowNs();
  sink.RecordSpan(Stage::kFetch, t0, t0 + 100, 1, ctx,
                  Subsystem::kHostbridge);
  EXPECT_FALSE(watchdog.Probe().has_value());  // fresh progress: quiet

  // ...and nothing moves past the deadline.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  auto report = watchdog.Probe();
  ASSERT_TRUE(report.has_value());
  EXPECT_GE(report->quiet_ms, 5u);
  ASSERT_EQ(report->inflight.size(), 1u);
  EXPECT_EQ(report->inflight[0].batch_id, ctx.batch_id);
  EXPECT_NE(report->text.find("pipeline stalled"), std::string::npos);
  EXPECT_NE(report->text.find("fetch"), std::string::npos);
  EXPECT_EQ(watchdog.StallsDetected(), 1u);

  // The stall landed in the event log: one kStallDetected record plus a
  // machine-readable kStageStalled record per stalled stage.
  const std::vector<Event> events = sink.events()->Snapshot();
  ASSERT_FALSE(events.empty());
  bool saw_stall = false, saw_stage = false;
  for (const Event& e : events) {
    if (e.type == EventType::kStallDetected) saw_stall = true;
    if (e.type == EventType::kStageStalled) {
      saw_stage = true;
      EXPECT_LT(e.arg0, static_cast<uint64_t>(kNumStages));
      EXPECT_GE(e.arg1, 5u);  // that stage's quiet ms
    }
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_stage);

  // Re-armed: the very next probe does not fire again...
  EXPECT_FALSE(watchdog.Probe().has_value());

  // ...and a completed batch means later quiet periods are healthy idle.
  tracer->EndBatch(ctx, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_FALSE(watchdog.Probe().has_value());
  EXPECT_EQ(watchdog.StallsDetected(), 1u);
}

TEST(WatchdogTest, SilentWithoutTracer) {
  Telemetry sink;  // no EnableTracing: cannot tell stall from drained
  WatchdogOptions options;
  options.deadline_ms = 1;
  Watchdog watchdog(&sink, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(watchdog.Probe().has_value());
}

TEST(TraceExporterTest, EmitsChromeTraceEvents) {
  Tracer tracer;
  const TraceContext ctx = tracer.StartBatch();
  const uint64_t t0 = NowNs();
  const uint64_t fetch = tracer.RecordSpan(ctx, Stage::kFetch,
                                           Subsystem::kHostbridge, 0, t0,
                                           t0 + 1000, 1);
  tracer.RecordSpan(ctx.Child(fetch), Stage::kDecode, Subsystem::kFpga, 2,
                    t0 + 1000, t0 + 2000, 1);
  tracer.EndBatch(ctx, 1);

  const std::string json = TraceExporter::ToChromeJson(tracer);
  // Envelope + the three event flavours the format needs.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete spans
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);  // async batch open
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);  // async batch close
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("hostbridge"), std::string::npos);
  EXPECT_NE(json.find("fpga"), std::string::npos);
  EXPECT_NE(json.find("\"decode\""), std::string::npos);
  // Balanced braces/brackets (cheap structural validity check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExporterTest, WriteChromeJsonRoundTrip) {
  Tracer tracer;
  const TraceContext ctx = tracer.StartBatch();
  const uint64_t t0 = NowNs();
  tracer.RecordSpan(ctx, Stage::kCollect, Subsystem::kBackend, 0, t0,
                    t0 + 500, 8);
  tracer.EndBatch(ctx, 8);

  const std::string path = testing::TempDir() + "dlb_trace_test.json";
  ASSERT_TRUE(TraceExporter::WriteChromeJson(tracer, path).ok());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, TraceExporter::ToChromeJson(tracer));

  EXPECT_FALSE(TraceExporter::WriteChromeJson(tracer, "/no/such/dir/x.json")
                   .ok());
}

}  // namespace
}  // namespace dlb::telemetry
