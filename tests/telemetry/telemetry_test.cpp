#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

namespace dlb::telemetry {
namespace {

TEST(StageTest, NamesAreStableAndOrdered) {
  EXPECT_STREQ(StageName(Stage::kFetch), "fetch");
  EXPECT_STREQ(StageName(Stage::kDecode), "decode");
  EXPECT_STREQ(StageName(Stage::kResize), "resize");
  EXPECT_STREQ(StageName(Stage::kCollect), "collect");
  EXPECT_STREQ(StageName(Stage::kDispatch), "dispatch");
  EXPECT_STREQ(StageName(Stage::kConsume), "consume");
  EXPECT_EQ(kNumStages, 6);
}

TEST(SpanRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpanRing ring(5);
  EXPECT_EQ(ring.Capacity(), 8u);
  SpanRing ring2(0);
  EXPECT_GE(ring2.Capacity(), 2u);
}

TEST(SpanRingTest, PushAssignsMonotonicSequence) {
  SpanRing ring(8);
  for (uint64_t i = 0; i < 5; ++i) {
    SpanRecord r;
    r.stage = Stage::kDecode;
    r.start_ns = i * 100;
    r.end_ns = i * 100 + 50;
    EXPECT_EQ(ring.Push(r), i);
  }
  EXPECT_EQ(ring.TotalRecorded(), 5u);
  auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].seq, i);
    EXPECT_EQ(snap[i].DurationNs(), 50u);
  }
}

TEST(SpanRingTest, WraparoundKeepsMostRecent) {
  SpanRing ring(4);
  ASSERT_EQ(ring.Capacity(), 4u);
  for (uint64_t i = 0; i < 10; ++i) {
    SpanRecord r;
    r.start_ns = i;
    r.end_ns = i + 1;
    ring.Push(r);
  }
  EXPECT_EQ(ring.TotalRecorded(), 10u);
  auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Only the last capacity() records survive, oldest first.
  EXPECT_EQ(snap.front().seq, 6u);
  EXPECT_EQ(snap.back().seq, 9u);
}

TEST(ScopedSpanTest, LifecycleRecordsIntoBothSinks) {
  Telemetry telemetry(64);
  {
    ScopedSpan span(&telemetry, Stage::kFetch, 1);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    span.SetItems(32);
  }
  const StageSnapshot snap = telemetry.Get(Stage::kFetch).Snapshot();
  EXPECT_EQ(snap.ops, 1u);
  EXPECT_EQ(snap.items, 32u);
  EXPECT_GT(snap.max_ns, 0u);
  auto spans = telemetry.Spans().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].stage, Stage::kFetch);
  EXPECT_EQ(spans[0].items, 32u);
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
}

TEST(ScopedSpanTest, CancelDropsTheSpan) {
  Telemetry telemetry(64);
  {
    ScopedSpan span(&telemetry, Stage::kDecode);
    span.Cancel();
  }
  EXPECT_EQ(telemetry.Get(Stage::kDecode).Snapshot().ops, 0u);
  EXPECT_EQ(telemetry.Spans().TotalRecorded(), 0u);
}

TEST(ScopedSpanTest, NullTelemetryIsNoOp) {
  ScopedSpan span(nullptr, Stage::kResize, 7);
  span.SetItems(3);
  // Destruction must not crash or record anywhere.
}

TEST(TelemetryTest, RecordSpanClampsReversedTimestamps) {
  Telemetry telemetry(64);
  telemetry.RecordSpan(Stage::kDispatch, /*start_ns=*/1000, /*end_ns=*/500, 2);
  const StageSnapshot snap = telemetry.Get(Stage::kDispatch).Snapshot();
  EXPECT_EQ(snap.ops, 1u);
  EXPECT_EQ(snap.busy_ns, 0u);
}

TEST(TelemetryTest, StageMetricsSurfaceInRegistry) {
  Telemetry telemetry(64);
  telemetry.RecordSpan(Stage::kDecode, 0, 1000, 4);
  MetricRegistry& reg = telemetry.Registry();
  EXPECT_EQ(reg.GetCounter("stage.decode.ops")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("stage.decode.items")->Value(), 4u);
  EXPECT_EQ(reg.GetHistogram("stage.decode.latency_ns")->Count(), 1u);
}

TEST(TelemetryTest, SnapshotStagesCoversAllSixInDataflowOrder) {
  Telemetry telemetry(64);
  telemetry.RecordSpan(Stage::kConsume, 0, 10, 1);
  auto stages = telemetry.SnapshotStages();
  ASSERT_EQ(stages.size(), static_cast<size_t>(kNumStages));
  for (int i = 0; i < kNumStages; ++i) {
    EXPECT_EQ(static_cast<int>(stages[i].stage), i);
    EXPECT_EQ(stages[i].name, StageName(stages[i].stage));
  }
  EXPECT_EQ(stages[static_cast<int>(Stage::kConsume)].ops, 1u);
  EXPECT_EQ(stages[static_cast<int>(Stage::kFetch)].ops, 0u);
}

// Histogram/counter snapshots must stay self-consistent while many threads
// hammer the same stage: ops equals the recorded span count, items add up,
// and every intermediate snapshot is monotone.
TEST(TelemetryTest, ConcurrentRecordersStayConsistent) {
  Telemetry telemetry(1024);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    uint64_t last_ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const StageSnapshot snap = telemetry.Get(Stage::kResize).Snapshot();
      EXPECT_GE(snap.ops, last_ops);
      last_ops = snap.ops;
      // A ring snapshot mid-churn must only contain stable records.
      for (const SpanRecord& r : telemetry.Spans().Snapshot()) {
        EXPECT_EQ(r.stage, Stage::kResize);
        EXPECT_EQ(r.end_ns - r.start_ns, 100u);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&telemetry, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const uint64_t start = static_cast<uint64_t>(t) * 1000000 + i;
        telemetry.RecordSpan(Stage::kResize, start, start + 100, 2);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();

  const StageSnapshot snap = telemetry.Get(Stage::kResize).Snapshot();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kSpansPerThread;
  EXPECT_EQ(snap.ops, total);
  EXPECT_EQ(snap.items, total * 2);
  EXPECT_EQ(snap.busy_ns, total * 100);
  EXPECT_EQ(snap.p50_ns, 100u);
  EXPECT_EQ(telemetry.Spans().TotalRecorded(), total);

  // After the dust settles the ring holds exactly its capacity of records
  // with distinct, maximal sequence numbers.
  auto spans = telemetry.Spans().Snapshot();
  EXPECT_EQ(spans.size(), telemetry.Spans().Capacity());
  std::set<uint64_t> seqs;
  for (const SpanRecord& r : spans) {
    seqs.insert(r.seq);
    EXPECT_GE(r.seq, total - telemetry.Spans().Capacity());
  }
  EXPECT_EQ(seqs.size(), spans.size());
}

// The registry JSON export is deterministic, so it can be pinned verbatim.
// Values stay in the histogram's exactly-representable linear region.
TEST(TelemetryTest, RegistryJsonGolden) {
  MetricRegistry reg;
  reg.GetCounter("b.ops")->Add(3);
  reg.GetCounter("a.ops")->Add(1);
  reg.GetGauge("pool.free")->Set(5);
  Histogram* h = reg.GetHistogram("lat");
  h->Record(10);
  h->Record(30);
  EXPECT_EQ(reg.ReportJson(),
            "{\"counters\":{\"a.ops\":1,\"b.ops\":3},"
            "\"gauges\":{\"pool.free\":5},"
            "\"histograms\":{\"lat\":{\"count\":2,\"mean\":20,\"p50\":10,"
            "\"p95\":10,\"p99\":10,\"max\":30}}}");
}

TEST(TelemetryTest, ReportInterleavesKindsSorted) {
  MetricRegistry reg;
  reg.GetCounter("zz.count")->Add(1);
  reg.GetGauge("aa.gauge")->Set(2);
  reg.GetHistogram("mm.hist")->Record(4);
  const std::string report = reg.Report();
  const size_t a = report.find("aa.gauge");
  const size_t m = report.find("mm.hist");
  const size_t z = report.find("zz.count");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

}  // namespace
}  // namespace dlb::telemetry
