// EventLog under pressure: the seqlock ring must stay readable while
// writers lap it, and both render paths must stay well-formed.
#include "telemetry/event_log.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

namespace dlb::telemetry {
namespace {

TEST(EventLogTest, WraparoundKeepsMostRecentEvents) {
  EventLog log(/*capacity=*/8, EventLevel::kDebug);
  const size_t capacity = log.Capacity();
  const size_t total = capacity * 3 + 5;
  for (size_t i = 0; i < total; ++i) {
    log.Log(EventType::kBatchAdmitted, /*batch_id=*/i);
  }
  EXPECT_EQ(log.TotalLogged(), total);

  const std::vector<Event> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), capacity);
  // Oldest-first, contiguous, and ending at the last event logged.
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].seq, total - capacity + i);
    EXPECT_EQ(snapshot[i].batch_id, snapshot[i].seq);
  }
}

TEST(EventLogTest, TailReturnsMostRecentOldestFirst) {
  EventLog log(/*capacity=*/16, EventLevel::kDebug);
  for (uint64_t i = 0; i < 40; ++i) log.Log(EventType::kBatchCompleted, i);
  const std::vector<Event> tail = log.Tail(4);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().batch_id, 36u);
  EXPECT_EQ(tail.back().batch_id, 39u);
}

// Concurrent writers lapping a tiny ring: every snapshot taken while the
// ring churns must contain only whole events with strictly increasing
// sequence numbers, and the JSONL rendering must stay line-per-object
// well-formed. (A torn read would surface as a seq/payload mismatch.)
TEST(EventLogTest, ConcurrentWritersWraparoundStaysConsistent) {
  EventLog log(/*capacity=*/16, EventLevel::kDebug);
  constexpr int kWriters = 4;
  constexpr uint64_t kEventsPerWriter = 20000;

  std::atomic<bool> start{false};
  std::vector<std::jthread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kEventsPerWriter; ++i) {
        // Payload encodes the writer so a torn copy is detectable.
        log.Log(EventType::kPoolExhausted, /*batch_id=*/w,
                /*arg0=*/w * kEventsPerWriter + i, /*arg1=*/w);
      }
    });
  }

  start.store(true, std::memory_order_release);
  // Reader: snapshot continuously while the writers lap the ring.
  uint64_t snapshots = 0;
  while (log.TotalLogged() < kWriters * kEventsPerWriter) {
    const std::vector<Event> snap = log.Snapshot();
    uint64_t prev_seq = 0;
    bool first = true;
    for (const Event& e : snap) {
      if (!first) EXPECT_GT(e.seq, prev_seq);  // monotonically sequenced
      prev_seq = e.seq;
      first = false;
      // Whole-event consistency: batch_id, arg0 and arg1 were written
      // together; a torn slot would mix writers.
      ASSERT_LT(e.batch_id, static_cast<uint64_t>(kWriters));
      EXPECT_EQ(e.arg1, e.batch_id);
      EXPECT_EQ(e.arg0 / kEventsPerWriter, e.batch_id);
    }
    ++snapshots;
  }
  for (auto& w : writers) w.join();
  EXPECT_GT(snapshots, 0u);
  EXPECT_EQ(log.TotalLogged(), kWriters * kEventsPerWriter);

  // JSONL rendering of the settled ring: one {...} object per line, seq
  // strictly increasing.
  const std::string jsonl = log.RenderJsonl();
  uint64_t lines = 0;
  size_t pos = 0;
  while (pos < jsonl.size()) {
    size_t end = jsonl.find('\n', pos);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"seq\":"), std::string::npos);
    EXPECT_NE(line.find("\"type\":\"pool_exhausted\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, log.Snapshot().size());
}

TEST(EventLogTest, LevelFilterDropsBelowMinLevel) {
  EventLog log(/*capacity=*/16, EventLevel::kWarn);
  log.Log(EventType::kBatchAdmitted);   // debug: dropped
  log.Log(EventType::kPoolExhausted);   // info: dropped
  log.Log(EventType::kStallDetected);   // warn: kept
  EXPECT_EQ(log.TotalLogged(), 1u);
  const std::vector<Event> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].type, EventType::kStallDetected);
}

}  // namespace
}  // namespace dlb::telemetry
