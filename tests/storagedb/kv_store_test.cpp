#include "storagedb/kv_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <thread>

#include "common/rng.h"

namespace dlb::db {
namespace {

Bytes ToBytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(KvStoreTest, PutGetRoundTrip) {
  KvStore store(16);
  ASSERT_TRUE(store.Put("alpha", ToBytes("one")).ok());
  ASSERT_TRUE(store.Put("beta", ToBytes("two")).ok());
  auto v = store.Get("alpha");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::string(v.value().begin(), v.value().end()), "one");
  EXPECT_TRUE(store.Contains("beta"));
  EXPECT_FALSE(store.Contains("gamma"));
  EXPECT_EQ(store.RecordCount(), 2u);
}

TEST(KvStoreTest, MissingKeyIsNotFound) {
  KvStore store(4);
  EXPECT_EQ(store.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, EmptyKeyRejected) {
  KvStore store(4);
  EXPECT_FALSE(store.Put("", ToBytes("x")).ok());
}

TEST(KvStoreTest, NewestDuplicateWins) {
  KvStore store(4);
  ASSERT_TRUE(store.Put("k", ToBytes("v1")).ok());
  ASSERT_TRUE(store.Put("k", ToBytes("v2")).ok());
  auto v = store.Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::string(v.value().begin(), v.value().end()), "v2");
}

TEST(KvStoreTest, LargeValuesSpanPages) {
  KvStore store(2);
  Bytes big(3 * kPageSize + 123);
  Rng rng(7);
  for (auto& b : big) b = static_cast<uint8_t>(rng.UniformU64(256));
  ASSERT_TRUE(store.Put("big", big).ok());
  auto v = store.Get("big");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), big);
}

TEST(KvStoreTest, ManyKeysAcrossBuckets) {
  KvStore store(8);
  std::map<std::string, Bytes> expected;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key_" + std::to_string(i);
    Bytes value(1 + rng.UniformU64(300));
    for (auto& b : value) b = static_cast<uint8_t>(rng.UniformU64(256));
    expected[key] = value;
    ASSERT_TRUE(store.Put(key, value).ok());
  }
  for (const auto& [key, value] : expected) {
    auto v = store.Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(v.value(), value) << key;
  }
}

TEST(KvStoreTest, ScanVisitsEveryRecord) {
  KvStore store(8);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        store.Put("k" + std::to_string(i), ToBytes(std::to_string(i))).ok());
  }
  size_t visited = 0;
  ASSERT_TRUE(store
                  .Scan([&](std::string_view key, ByteSpan value) {
                    ++visited;
                    EXPECT_FALSE(key.empty());
                    EXPECT_FALSE(value.empty());
                  })
                  .ok());
  EXPECT_EQ(visited, 50u);
}

TEST(KvStoreTest, ConcurrentReadersSeeConsistentData) {
  KvStore store(16);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Put("k" + std::to_string(i),
                          ToBytes("value_" + std::to_string(i)))
                    .ok());
  }
  std::vector<std::thread> readers;
  std::atomic<int> errors{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&store, &errors] {
      Rng rng(std::hash<std::thread::id>{}(std::this_thread::get_id()));
      for (int i = 0; i < 2000; ++i) {
        const int k = static_cast<int>(rng.UniformU64(100));
        auto v = store.Get("k" + std::to_string(k));
        if (!v.ok() ||
            std::string(v.value().begin(), v.value().end()) !=
                "value_" + std::to_string(k)) {
          ++errors;
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GE(store.Stats().gets, 8000u);
}

TEST(KvStoreTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dlb_kv.bin").string();
  KvStore store(8);
  ASSERT_TRUE(store.Put("persist", ToBytes("me")).ok());
  ASSERT_TRUE(store.SaveToFile(path).ok());

  auto loaded = KvStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto v = loaded.value()->Get("persist");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::string(v.value().begin(), v.value().end()), "me");
  EXPECT_EQ(loaded.value()->RecordCount(), 1u);
  std::filesystem::remove(path);
}

TEST(KvStoreTest, WritesContinueAfterLoad) {
  // Tails are recovered by walking chains at load; appends must land at
  // the true end of each chain, not clobber existing records.
  const std::string path =
      (std::filesystem::temp_directory_path() / "dlb_kv_append.bin").string();
  {
    KvStore store(4);
    // Force multi-page chains.
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(store.Put("old" + std::to_string(i), Bytes(700, 1)).ok());
    }
    ASSERT_TRUE(store.SaveToFile(path).ok());
  }
  auto loaded = KvStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        loaded.value()->Put("new" + std::to_string(i), Bytes(700, 2)).ok());
  }
  for (int i = 0; i < 30; ++i) {
    auto v = loaded.value()->Get("old" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(v.value(), Bytes(700, 1)) << i;
  }
  for (int i = 0; i < 10; ++i) {
    auto v = loaded.value()->Get("new" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(v.value(), Bytes(700, 2)) << i;
  }
  std::filesystem::remove(path);
}

TEST(KvStoreTest, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dlb_kv_bad.bin").string();
  {
    PageStore pages;
    pages.Alloc();  // zeroed page: wrong magic
    ASSERT_TRUE(pages.SaveToFile(path).ok());
  }
  EXPECT_FALSE(KvStore::LoadFromFile(path).ok());
  std::filesystem::remove(path);
}

TEST(KvStoreTest, StatsCountPagesTouched) {
  KvStore store(1);  // one bucket: every record chains together
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.Put("k" + std::to_string(i), Bytes(600)).ok());
  }
  (void)store.Get("k19");
  EXPECT_GT(store.Stats().pages_touched, 1u);
}

}  // namespace
}  // namespace dlb::db
