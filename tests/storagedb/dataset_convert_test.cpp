#include "storagedb/dataset_convert.h"

#include <gtest/gtest.h>

namespace dlb::db {
namespace {

Dataset SmallDataset(size_t n) {
  DatasetSpec spec = ImageNetLikeSpec(n);
  spec.width = 64;
  spec.height = 48;
  spec.dim_jitter = 0.1;
  auto ds = GenerateDataset(spec);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(DatumTest, EncodeDecodeRoundTrip) {
  Image img(5, 4, 3);
  for (size_t i = 0; i < img.SizeBytes(); ++i) {
    img.Data()[i] = static_cast<uint8_t>(i);
  }
  DatumHeader h;
  h.width = 5;
  h.height = 4;
  h.channels = 3;
  h.label = -7;
  Bytes datum = EncodeDatum(h, img);
  auto decoded = DecodeDatum(datum);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().first.label, -7);
  EXPECT_TRUE(decoded.value().second == img);
}

TEST(DatumTest, RejectsTruncated) {
  EXPECT_FALSE(DecodeDatum(ByteSpan{}).ok());
  Bytes small(4);
  EXPECT_FALSE(DecodeDatum(small).ok());
}

TEST(DatumTest, RejectsSizeMismatch) {
  Image img(2, 2, 1);
  DatumHeader h{2, 2, 1, 0};
  Bytes datum = EncodeDatum(h, img);
  datum.push_back(0);  // extra byte
  EXPECT_EQ(DecodeDatum(datum).status().code(), StatusCode::kCorruptData);
}

TEST(ConvertTest, ConvertsEveryImage) {
  Dataset ds = SmallDataset(10);
  KvStore store(32);
  ConvertOptions opts;
  opts.resize_width = 32;
  opts.resize_height = 32;
  auto report = ConvertDataset(ds, opts, &store);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().images, 10u);
  EXPECT_EQ(store.RecordCount(), 10u);
  EXPECT_GT(report.value().wall_seconds, 0.0);
  // Raw 32x32x3 datums.
  EXPECT_EQ(report.value().output_bytes, 10u * (9 + 32 * 32 * 3));
}

TEST(ConvertTest, DatumsMatchManifestLabels) {
  Dataset ds = SmallDataset(6);
  KvStore store(32);
  ConvertOptions opts;
  opts.resize_width = 16;
  opts.resize_height = 16;
  ASSERT_TRUE(ConvertDataset(ds, opts, &store).ok());
  for (const auto& rec : ds.manifest.Records()) {
    auto value = store.Get(rec.name);
    ASSERT_TRUE(value.ok());
    auto datum = DecodeDatum(value.value());
    ASSERT_TRUE(datum.ok());
    EXPECT_EQ(datum.value().first.label, rec.label);
    EXPECT_EQ(datum.value().second.Width(), 16);
    EXPECT_EQ(datum.value().second.Height(), 16);
  }
}

TEST(ConvertTest, MultiThreadedMatchesSingleThreaded) {
  Dataset ds = SmallDataset(8);
  KvStore store1(16), store4(16);
  ConvertOptions opts1;
  opts1.resize_width = 24;
  opts1.resize_height = 24;
  ConvertOptions opts4 = opts1;
  opts4.num_threads = 4;
  ASSERT_TRUE(ConvertDataset(ds, opts1, &store1).ok());
  ASSERT_TRUE(ConvertDataset(ds, opts4, &store4).ok());
  for (const auto& rec : ds.manifest.Records()) {
    auto v1 = store1.Get(rec.name);
    auto v4 = store4.Get(rec.name);
    ASSERT_TRUE(v1.ok());
    ASSERT_TRUE(v4.ok());
    EXPECT_EQ(v1.value(), v4.value()) << rec.name;
  }
}

TEST(ConvertTest, NullOutputRejected) {
  Dataset ds = SmallDataset(1);
  EXPECT_FALSE(ConvertDataset(ds, ConvertOptions{}, nullptr).ok());
}

}  // namespace
}  // namespace dlb::db
