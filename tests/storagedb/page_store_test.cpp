#include "storagedb/page_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace dlb::db {
namespace {

TEST(PageStoreTest, AllocSequentialIds) {
  PageStore store;
  EXPECT_EQ(store.Alloc(), 0u);
  EXPECT_EQ(store.Alloc(), 1u);
  EXPECT_EQ(store.PageCount(), 2u);
  EXPECT_EQ(store.SizeBytes(), 2 * kPageSize);
}

TEST(PageStoreTest, PagesAreZeroed) {
  PageStore store;
  const PageId id = store.Alloc();
  auto page = store.Page(id);
  ASSERT_TRUE(page.ok());
  for (uint8_t b : page.value()) ASSERT_EQ(b, 0);
}

TEST(PageStoreTest, WritesPersistWithinStore) {
  PageStore store;
  const PageId id = store.Alloc();
  {
    auto page = store.Page(id);
    ASSERT_TRUE(page.ok());
    page.value()[17] = 0xAB;
  }
  const PageStore& cstore = store;
  auto page = cstore.Page(id);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page.value()[17], 0xAB);
}

TEST(PageStoreTest, OutOfRangeRejected) {
  PageStore store;
  store.Alloc();
  EXPECT_FALSE(store.Page(PageId{5}).ok());
  EXPECT_FALSE(store.Page(kInvalidPage).ok());
}

TEST(PageStoreTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dlb_pages.bin").string();
  PageStore store;
  const PageId id = store.Alloc();
  store.Page(id).value()[0] = 42;
  ASSERT_TRUE(store.SaveToFile(path).ok());

  PageStore loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.PageCount(), 1u);
  EXPECT_EQ(loaded.Page(id).value()[0], 42);
  std::filesystem::remove(path);
}

TEST(PageStoreTest, LoadRejectsBadSize) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dlb_badpages.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a page multiple";
  }
  PageStore store;
  EXPECT_EQ(store.LoadFromFile(path).code(), StatusCode::kCorruptData);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dlb::db
