// Figure 9 — CPU cost in the inference experiments at the paper's batch
// sizes (GoogLeNet/VGG-16 at 32, ResNet-50 at 64). Paper: CPU-based burns
// 7-14 cores per GPU; nvJPEG ~1.5; DLBooster ~0.5 plus launch threads.
#include <cstdio>

#include "workflow/inference_sim.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::workflow;

int main() {
  std::printf("=== Figure 9: CPU cost in inference (cores) ===\n\n");
  struct Panel {
    const char* title;
    const gpu::DlModel* model;
    int batch;
    int gpus;
    int pipelines;
  };
  const Panel panels[] = {
      {"a: GoogLeNet, bs 32", &gpu::GoogLeNet(), 32, 1, 1},
      {"b: VGG-16, bs 32", &gpu::Vgg16(), 32, 1, 1},
      {"c: ResNet-50, bs 64 [2 GPUs]", &gpu::ResNet50(), 64, 2, 2},
  };
  for (const Panel& panel : panels) {
    std::printf("(%s)\n", panel.title);
    Table t({"backend", "total cores", "preprocess", "kernel launch",
             "other"});
    for (auto backend : {InferBackend::kCpu, InferBackend::kNvjpeg,
                         InferBackend::kDlbooster}) {
      InferConfig config;
      config.model = panel.model;
      config.backend = backend;
      config.batch_size = panel.batch;
      config.num_gpus = panel.gpus;
      config.fpga_pipelines = panel.pipelines;
      config.sim_seconds = 8.0;
      InferResult r = SimulateInference(config);
      auto get = [&](const char* k) {
        auto it = r.cpu_by_category.find(k);
        return it == r.cpu_by_category.end() ? 0.0 : it->second;
      };
      const double preprocess = get("preprocess") + get("nvjpeg_launch");
      const double launch = get("kernel_launch");
      t.AddRow({InferBackendName(backend), Fmt(r.cpu_cores, 1),
                Fmt(preprocess, 1), Fmt(launch, 1),
                Fmt(r.cpu_cores - preprocess - launch, 1)});
    }
    std::printf("%s\n", t.Render().c_str());
  }
  std::printf(
      "paper shape: CPU-based burns 7~14 cores/GPU; nvJPEG and DLBooster\n"
      "stay at ~1.5 and ~0.5 cores of real work plus launch threads.\n");
  return 0;
}
