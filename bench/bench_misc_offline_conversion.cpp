// §2.2(2) / footnote 4 — the hidden cost of offline backends: converting
// the dataset into the DB before any training can start (">2 hours" for
// ILSVRC12's 1.28 M images on the paper's machine).
//
// This harness measures the REAL conversion rate of this codebase's
// pipeline (decode + resize + store into the KV store) on synthetic JPEGs,
// then extrapolates to ILSVRC12 scale.
#include <cstdio>

#include "dataplane/synthetic_dataset.h"
#include "storagedb/dataset_convert.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::workflow;

int main() {
  std::printf("=== Offline conversion cost (footnote 4) ===\n\n");
  constexpr size_t kImages = 96;
  DatasetSpec spec = ImageNetLikeSpec(kImages);
  spec.width = 500;
  spec.height = 375;
  spec.dim_jitter = 0.15;
  auto dataset = GenerateDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  Table t({"threads", "images/s", "ILSVRC12 est. (min)", "output MiB"});
  for (int threads : {1, 2}) {
    db::KvStore store(4096);
    db::ConvertOptions options;
    options.resize_width = 256;
    options.resize_height = 256;
    options.num_threads = threads;
    auto report = db::ConvertDataset(dataset.value(), options, &store);
    if (!report.ok()) {
      std::fprintf(stderr, "convert: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const double rate = report.value().images / report.value().wall_seconds;
    const double ilsvrc_minutes = 1281167.0 / rate / 60.0;
    t.AddRow({std::to_string(threads), Fmt(rate, 1), FmtCount(ilsvrc_minutes),
              Fmt(report.value().output_bytes / 1048576.0, 1)});
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf(
      "paper anchor: >2 hours to prepare the ILSVRC12 LMDB. The exact\n"
      "figure depends on cores burned; the point is that offline backends\n"
      "charge this cost before the first training step, and again whenever\n"
      "the preprocessing recipe changes. DLBooster's online decode does\n"
      "not (its first epoch already trains).\n");
  return 0;
}
