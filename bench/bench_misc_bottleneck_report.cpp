// Bottleneck report: where each configuration's time actually goes — per
// FPGA unit, GPU compute, and CPU categories. The operational companion to
// the figures: it answers "what would I upgrade next?".
//
// `--json` switches to a single machine-readable JSON document on stdout
// (same measurements, no tables) for dashboards and regression tooling.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "telemetry/telemetry.h"
#include "workflow/inference_sim.h"
#include "workflow/report.h"
#include "workflow/training_sim.h"

using namespace dlb;
using namespace dlb::workflow;

namespace {

std::string JsonStr(const std::string& s) { return "\"" + s + "\""; }

// Per-stage breakdown of a real (non-simulated) dlbooster pipeline run,
// derived entirely from the pipeline's telemetry — no hand-maintained
// stage-cost constants.
void MeasuredStageBreakdown(bool json) {
  if (!json) {
    std::printf("measured, DLBooster pipeline, 128 images (telemetry):\n");
  }
  auto ds = GenerateDataset(ImageNetLikeSpec(128));
  if (!ds.ok()) {
    if (json) {
      std::printf("  \"measured\": {\"error\": %s}",
                  JsonStr(ds.status().ToString()).c_str());
    } else {
      std::printf("  dataset generation failed: %s\n",
                  ds.status().ToString().c_str());
    }
    return;
  }
  core::PipelineConfig config;
  config.backend = "dlbooster";
  config.options.batch_size = 16;
  config.options.resize_w = 224;
  config.options.resize_h = 224;
  config.max_images = 128;
  auto pipeline = core::PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.value().manifest, ds.value().store.get())
                      .Build();
  if (!pipeline.ok()) {
    if (json) {
      std::printf("  \"measured\": {\"error\": %s}",
                  JsonStr(pipeline.status().ToString()).c_str());
    } else {
      std::printf("  pipeline build failed: %s\n",
                  pipeline.status().ToString().c_str());
    }
    return;
  }
  while (pipeline.value()->NextBatch().ok()) {
  }
  const core::PipelineStats stats = pipeline.value()->Stats();
  uint64_t total_busy = 0;
  for (const auto& s : stats.stages) total_busy += s.busy_ns;
  if (json) {
    std::printf("  \"measured\": {\n    \"images_per_second\": %s,\n"
                "    \"stages\": [",
                Fmt(stats.images_per_second, 1).c_str());
    bool first = true;
    for (const auto& s : stats.stages) {
      if (s.ops == 0) continue;
      std::printf("%s\n      {\"stage\": %s, \"ops\": %llu, \"items\": %llu, "
                  "\"p50_us\": %s, \"p95_us\": %s, \"p99_us\": %s, "
                  "\"busy_pct\": %s}",
                  first ? "" : ",", JsonStr(s.name).c_str(),
                  static_cast<unsigned long long>(s.ops),
                  static_cast<unsigned long long>(s.items),
                  Fmt(s.p50_ns / 1e3, 1).c_str(), Fmt(s.p95_ns / 1e3, 1).c_str(),
                  Fmt(s.p99_ns / 1e3, 1).c_str(),
                  Fmt(total_busy ? 100.0 * s.busy_ns / total_busy : 0.0, 1)
                      .c_str());
      first = false;
    }
    std::printf("\n    ]\n  }");
    return;
  }
  Table t({"stage", "ops", "items", "p50 us", "p95 us", "p99 us", "busy %"});
  for (const auto& s : stats.stages) {
    if (s.ops == 0) continue;
    t.AddRow({s.name, std::to_string(s.ops), std::to_string(s.items),
              Fmt(s.p50_ns / 1e3, 1), Fmt(s.p95_ns / 1e3, 1),
              Fmt(s.p99_ns / 1e3, 1),
              Fmt(total_busy ? 100.0 * s.busy_ns / total_busy : 0.0, 1)});
  }
  std::printf("%s", t.Render().c_str());
  std::printf("-> %.0f images/s end-to-end; the busy%% column says which\n"
              "   stage to widen next (decode spans cover the full on-device\n"
              "   Huffman+iDCT+colour path, so they dominate wall time).\n\n",
              stats.images_per_second);
}

void CpuCategoriesJson(const std::map<std::string, double>& by_category) {
  std::printf("\"cpu_cores\": {");
  bool first = true;
  for (const auto& [category, cores] : by_category) {
    std::printf("%s%s: %s", first ? "" : ", ", JsonStr(category).c_str(),
                Fmt(cores, 2).c_str());
    first = false;
  }
  std::printf("}");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  if (json) {
    std::printf("{\n");
  } else {
    std::printf("=== Bottleneck report ===\n\n");
  }

  MeasuredStageBreakdown(json);

  if (!json) std::printf("training, DLBooster, AlexNet, 2 GPUs:\n");
  {
    TrainConfig config;
    config.model = &gpu::AlexNet();
    config.backend = TrainBackend::kDlbooster;
    config.num_gpus = 2;
    config.sim_seconds = 10;
    TrainResult r = SimulateTraining(config);
    if (json) {
      std::printf(",\n  \"training\": {\"model\": \"AlexNet\", \"gpus\": 2, "
                  "\"gpu_compute_util\": %s, \"fpga_busiest_util\": %s, ",
                  Fmt(r.gpu_compute_util, 2).c_str(), Fmt(r.fpga_util, 2).c_str());
      CpuCategoriesJson(r.cpu_by_category);
      std::printf("}");
    } else {
      Table t({"component", "utilisation / cores"});
      t.AddRow({"GPU compute (mean)", Fmt(r.gpu_compute_util, 2)});
      t.AddRow({"FPGA busiest unit", Fmt(r.fpga_util, 2)});
      for (const auto& [category, cores] : r.cpu_by_category) {
        t.AddRow({"cpu: " + category, Fmt(cores, 2)});
      }
      std::printf("%s", t.Render().c_str());
      std::printf("-> GPU-bound (util ~1.0): exactly where DLBooster wants "
                  "the bottleneck.\n\n");
    }
  }

  if (!json) std::printf("inference, DLBooster, GoogLeNet, bs 32:\n");
  {
    InferConfig config;
    config.model = &gpu::GoogLeNet();
    config.backend = InferBackend::kDlbooster;
    config.batch_size = 32;
    config.sim_seconds = 8;
    InferResult r = SimulateInference(config);
    if (json) {
      std::printf(",\n  \"inference_dlbooster\": {\"model\": \"GoogLeNet\", "
                  "\"batch_size\": 32, \"gpu_compute_util\": %s, ",
                  Fmt(r.gpu_compute_util, 2).c_str());
      CpuCategoriesJson(r.cpu_by_category);
      std::printf("}");
    } else {
      Table t({"component", "utilisation / cores"});
      t.AddRow({"GPU compute", Fmt(r.gpu_compute_util, 2)});
      for (const auto& [category, cores] : r.cpu_by_category) {
        t.AddRow({"cpu: " + category, Fmt(cores, 2)});
      }
      std::printf("%s", t.Render().c_str());
      std::printf(
          "-> GPU idles (util < 1.0): the DRAM DataReader is the bound here\n"
          "   (Fig. 7(a) saturation); add a decoder pipeline to fix it.\n\n");
    }
  }

  if (!json) std::printf("inference, nvJPEG, GoogLeNet, bs 32:\n");
  {
    InferConfig config;
    config.model = &gpu::GoogLeNet();
    config.backend = InferBackend::kNvjpeg;
    config.batch_size = 32;
    config.sim_seconds = 8;
    InferResult r = SimulateInference(config);
    if (json) {
      std::printf(",\n  \"inference_nvjpeg\": {\"model\": \"GoogLeNet\", "
                  "\"batch_size\": 32, \"gpu_compute_util\": %s, ",
                  Fmt(r.gpu_compute_util, 2).c_str());
      CpuCategoriesJson(r.cpu_by_category);
      std::printf("}\n}\n");
    } else {
      Table t({"component", "utilisation / cores"});
      t.AddRow({"GPU compute (infer + decode)", Fmt(r.gpu_compute_util, 2)});
      for (const auto& [category, cores] : r.cpu_by_category) {
        t.AddRow({"cpu: " + category, Fmt(cores, 2)});
      }
      std::printf("%s", t.Render().c_str());
      std::printf(
          "-> GPU saturated but throughput is the LOWEST of the three\n"
          "   backends: decode kernels burn the cycles inference needs\n"
          "   (the §5.3 nvJPEG contention finding).\n");
    }
  }
  return 0;
}
