// Bottleneck report: where each configuration's time actually goes — per
// FPGA unit, GPU compute, and CPU categories. The operational companion to
// the figures: it answers "what would I upgrade next?".
#include <cstdio>

#include "workflow/inference_sim.h"
#include "workflow/report.h"
#include "workflow/training_sim.h"

using namespace dlb;
using namespace dlb::workflow;

int main() {
  std::printf("=== Bottleneck report ===\n\n");

  std::printf("training, DLBooster, AlexNet, 2 GPUs:\n");
  {
    TrainConfig config;
    config.model = &gpu::AlexNet();
    config.backend = TrainBackend::kDlbooster;
    config.num_gpus = 2;
    config.sim_seconds = 10;
    TrainResult r = SimulateTraining(config);
    Table t({"component", "utilisation / cores"});
    t.AddRow({"GPU compute (mean)", Fmt(r.gpu_compute_util, 2)});
    t.AddRow({"FPGA busiest unit", Fmt(r.fpga_util, 2)});
    for (const auto& [category, cores] : r.cpu_by_category) {
      t.AddRow({"cpu: " + category, Fmt(cores, 2)});
    }
    std::printf("%s", t.Render().c_str());
    std::printf("-> GPU-bound (util ~1.0): exactly where DLBooster wants "
                "the bottleneck.\n\n");
  }

  std::printf("inference, DLBooster, GoogLeNet, bs 32:\n");
  {
    InferConfig config;
    config.model = &gpu::GoogLeNet();
    config.backend = InferBackend::kDlbooster;
    config.batch_size = 32;
    config.sim_seconds = 8;
    InferResult r = SimulateInference(config);
    Table t({"component", "utilisation / cores"});
    t.AddRow({"GPU compute", Fmt(r.gpu_compute_util, 2)});
    for (const auto& [category, cores] : r.cpu_by_category) {
      t.AddRow({"cpu: " + category, Fmt(cores, 2)});
    }
    std::printf("%s", t.Render().c_str());
    std::printf(
        "-> GPU idles (util < 1.0): the DRAM DataReader is the bound here\n"
        "   (Fig. 7(a) saturation); add a decoder pipeline to fix it.\n\n");
  }

  std::printf("inference, nvJPEG, GoogLeNet, bs 32:\n");
  {
    InferConfig config;
    config.model = &gpu::GoogLeNet();
    config.backend = InferBackend::kNvjpeg;
    config.batch_size = 32;
    config.sim_seconds = 8;
    InferResult r = SimulateInference(config);
    Table t({"component", "utilisation / cores"});
    t.AddRow({"GPU compute (infer + decode)", Fmt(r.gpu_compute_util, 2)});
    for (const auto& [category, cores] : r.cpu_by_category) {
      t.AddRow({"cpu: " + category, Fmt(cores, 2)});
    }
    std::printf("%s", t.Render().c_str());
    std::printf(
        "-> GPU saturated but throughput is the LOWEST of the three\n"
        "   backends: decode kernels burn the cycles inference needs\n"
        "   (the §5.3 nvJPEG contention finding).\n");
  }
  return 0;
}
