// Ablation (§3.3 step 2): sizing the decoder units. Sweeps Huffman and
// resizer way counts under the Arria-10 ALM budget and reports decoder
// throughput plus per-unit utilisation — showing why the paper ships a
// 4-way Huffman + 2-way resizer: the heavy unit gets the parallelism.
#include <cstdio>
#include <functional>

#include "fpga/fpga_decoder_sim.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::fpga;
using namespace dlb::workflow;

int main() {
  std::printf("=== Ablation: FPGA unit way counts (500x375 JPEGs) ===\n\n");
  Table t({"huffman", "idct", "resizer", "ALMs", "fits?", "img/s",
           "huff util", "idct util", "rsz util"});
  for (int huffman : {1, 2, 4, 8}) {
    for (int resizer : {1, 2, 4}) {
      DecoderConfig config;
      config.huffman_ways = huffman;
      config.resizer_ways = resizer;
      const int alms = AlmUsage(config);
      const bool fits = ValidateConfig(config).ok();
      std::string rate = "-", hu = "-", iu = "-", ru = "-";
      if (fits) {
        sim::Scheduler sched;
        FpgaDecoderSim decoder(&sched, config);
        DecodeJob job;
        job.encoded_bytes = 60 * 1024;
        job.pixels = 500 * 375;
        job.out_bytes = 256 * 256 * 3;
        int completed = 0;
        for (int i = 0; i < 600; ++i) {
          while (!decoder.SubmitDecode(job, [&] { ++completed; }))
            sched.Step();
        }
        sched.Run();
        rate = FmtCount(600 / sim::ToSeconds(sched.Now()));
        hu = Fmt(decoder.HuffmanUtilization(), 2);
        iu = Fmt(decoder.IdctUtilization(), 2);
        ru = Fmt(decoder.ResizerUtilization(), 2);
      }
      t.AddRow({std::to_string(huffman), "1", std::to_string(resizer),
                FmtCount(alms), fits ? "yes" : "NO", rate, hu, iu, ru});
    }
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf(
      "reading: with 1 Huffman way the Huffman unit saturates (util ~1.0)\n"
      "and throughput stalls; widening it shifts the bottleneck. The\n"
      "shipped 4/1/2 design balances utilisation inside the ALM budget\n"
      "(%d ALMs available).\n",
      cal::kFpgaAlmBudget);
  return 0;
}
