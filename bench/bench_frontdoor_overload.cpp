// Front-door overload sweep: offered load pushed past saturation, measured
// through the real socket path (loadgen -> HTTP front door -> admission ->
// pipeline -> completion).
//
// Setup: a deliberately small pipeline (cpu backend, one decode thread) so
// saturation is cheap to reach, fronted by two tenants — `premium`
// (priority 2, tight deadline) and `batch` (priority 0, loose deadline) at
// a 30/70 offered mix. A closed-loop probe measures saturation, then three
// open-loop Poisson points run at 0.8x / 1.0x / 1.5x of it.
//
// What the sweep must show (the `pass` gate):
//   - Degraded-but-serving: zero hard 5xx (non-503) at every point, and
//     goodput does not collapse past saturation.
//   - Priority isolation: at 1.5x, premium p99 stays within 2x of its 0.8x
//     value (floored at half the premium deadline — sub-millisecond p99s
//     would otherwise make the ratio a coin flip) and premium is never
//     load-shed, while batch traffic is shed/rejected in volume.
//
// `--json` emits the per-point, per-tenant measurements; metric names keep
// latencies and rates out of the cross-machine ratio gate (absolute
// numbers vary with the host; the invariants above are what must hold).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "frontdoor/front_door.h"
#include "frontdoor/loadgen.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::frontdoor;
using namespace dlb::workflow;

namespace {

constexpr uint64_t kPremiumDeadlineMs = 400;
constexpr uint64_t kBatchDeadlineMs = 4000;

struct Point {
  double multiple = 0;
  double offered_rps = 0;
  uint64_t hard_5xx = 0;
  uint64_t transport_errors = 0;
  TenantReport premium;
  TenantReport batch;
};

double Pct(uint64_t part, uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> kv;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      kv.emplace_back(argv[i]);
    }
  }
  auto args_or = Config::FromArgs(kv);
  if (!args_or.ok()) {
    std::fprintf(stderr, "bad args: %s\n", args_or.status().ToString().c_str());
    return 2;
  }
  const Config& args = args_or.value();
  const double duration_s = args.GetDouble("duration", 4.0);
  const double calibrate_s = args.GetDouble("calibrate_s", 2.0);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  // A heavyweight payload on a one-thread decoder keeps saturation low
  // enough that the open-loop generator can actually overdrive it.
  DatasetSpec spec = ImageNetLikeSpec(4);
  spec.width = 640;
  spec.height = 480;
  auto dataset = GenerateDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 2;
  }
  auto payload = dataset.value().store->Read(dataset.value().manifest.At(0));
  if (!payload.ok()) {
    std::fprintf(stderr, "payload: %s\n", payload.status().ToString().c_str());
    return 2;
  }

  // Small rx queue on purpose: once a request is pushed it is FIFO — ahead
  // of every queued premium request — so its depth bounds the priority
  // inversion a burst of admitted batch traffic can inflict.
  BoundedQueue<NetworkImage> rx_queue(16);
  core::PipelineConfig config;
  config.backend = "cpu";
  config.options.batch_size = 8;
  config.options.num_threads = 1;
  config.options.queue_depth = 4;
  config.options.resize_w = 64;
  config.options.resize_h = 64;
  config.options.linger_ms = 2;
  auto pipeline = core::PipelineBuilder()
                      .WithConfig(config)
                      .WithNetworkSource(&rx_queue)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 2;
  }

  FrontDoorOptions door_options;
  door_options.tenants =
      "premium:prio=2,deadline=" + std::to_string(kPremiumDeadlineMs) +
      ";batch:prio=0,deadline=" + std::to_string(kBatchDeadlineMs);
  door_options.control_interval_ms = 50;
  door_options.shed_dwell_ms = 200;
  FrontDoor door(pipeline.value().get(), &rx_queue, door_options);
  if (auto started = door.Start(); !started.ok()) {
    std::fprintf(stderr, "front door: %s\n", started.ToString().c_str());
    return 2;
  }

  LoadgenOptions load_options;
  load_options.host = "127.0.0.1";
  load_options.port = door.Port();
  load_options.mix = {{"premium", 0.3, kPremiumDeadlineMs},
                      {"batch", 0.7, kBatchDeadlineMs}};
  load_options.connections = 24;
  load_options.seed = seed;
  load_options.payload.assign(payload.value().begin(),
                              payload.value().end());

  if (!json) std::printf("calibrating (%.1fs closed loop)...\n", calibrate_s);
  const double capacity = MeasureCapacity(load_options, calibrate_s);
  if (capacity <= 0) {
    std::fprintf(stderr, "calibration failed: nothing answered\n");
    door.Stop();
    return 1;
  }
  if (!json) std::printf("saturation ~%.0f req/s\n\n", capacity);

  const double kMultiples[] = {0.8, 1.0, 1.5};
  std::vector<Point> points;
  for (size_t k = 0; k < 3; ++k) {
    const double rate = capacity * kMultiples[k];
    std::vector<TraceArrival> arrivals;
    for (double t : GenerateArrivals(ArrivalPattern::kPoisson, rate,
                                     duration_s, seed + k)) {
      arrivals.push_back({t, ""});
    }
    const LoadReport report = RunLoad(load_options, arrivals);
    Point p;
    p.multiple = kMultiples[k];
    p.offered_rps = report.offered_rps;
    p.hard_5xx =
        report.TotalStatus(500, 599) - report.TotalStatus(503, 503);
    p.transport_errors = report.transport_errors;
    if (const TenantReport* t = report.Tenant("premium")) p.premium = *t;
    if (const TenantReport* t = report.Tenant("batch")) p.batch = *t;
    points.push_back(std::move(p));
    if (!json) {
      std::printf("point %.1fx done (%llu arrivals)\n", kMultiples[k],
                  static_cast<unsigned long long>(report.sent));
    }
  }
  door.Stop();

  const Point& low = points[0];
  const Point& sat = points[1];
  const Point& over = points[2];

  // p99 floor: sub-deadline/2 baselines make "within 2x" a noise gate.
  const double premium_p99_08_ms = low.premium.latency_us.Quantile(0.99) / 1e3;
  const double premium_p99_15_ms =
      over.premium.latency_us.Quantile(0.99) / 1e3;
  const double p99_floor_ms =
      std::max(premium_p99_08_ms, kPremiumDeadlineMs / 2.0);
  const double batch_unserved_15_pct =
      Pct(over.batch.shed + over.batch.rejected_deadline +
              over.batch.rejected_rate + over.batch.rejected_other,
          over.batch.sent);

  uint64_t total_hard_5xx = 0;
  uint64_t total_transport = 0;
  uint64_t total_sent = 0;
  for (const Point& p : points) {
    total_hard_5xx += p.hard_5xx;
    total_transport += p.transport_errors;
    total_sent += p.premium.sent + p.batch.sent;
  }

  const double goodput_sat =
      sat.premium.goodput_rps + sat.batch.goodput_rps;
  const double goodput_over =
      over.premium.goodput_rps + over.batch.goodput_rps;

  const bool pass =
      total_hard_5xx == 0 &&
      Pct(total_transport, total_sent) <= 1.0 &&
      premium_p99_15_ms <= 2.0 * p99_floor_ms &&
      over.premium.shed == 0 &&
      batch_unserved_15_pct > 5.0 &&
      goodput_over >= 0.5 * goodput_sat;

  if (json) {
    std::string out = "{\n";
    out += "  \"calibrated_capacity_rps\": " + Fmt(capacity, 1) + ",\n";
    out += "  \"duration_s\": " + Fmt(duration_s, 1) + ",\n";
    for (const Point& p : points) {
      // 0.8 -> "0_8x": keeps metric names benchdiff-safe (no dots).
      std::string tag = Fmt(p.multiple, 1);
      for (char& c : tag) {
        if (c == '.') c = '_';
      }
      tag += "x";
      for (const TenantReport* t : {&p.premium, &p.batch}) {
        const std::string prefix = "  \"" + t->name + "_" + tag + "_";
        out += prefix + "goodput_rps\": " + Fmt(t->goodput_rps, 1) + ",\n";
        out += prefix + "p99_ms\": " +
               Fmt(t->latency_us.Quantile(0.99) / 1e3, 2) + ",\n";
        out += prefix + "shed_pct\": " + Fmt(Pct(t->shed, t->sent), 2) +
               ",\n";
        out += prefix + "rejected_pct\": " +
               Fmt(Pct(t->rejected_deadline + t->rejected_rate +
                           t->rejected_other,
                       t->sent),
                   2) +
               ",\n";
      }
      out += "  \"hard_5xx_" + tag + "\": " + std::to_string(p.hard_5xx) +
             ",\n";
    }
    out += "  \"premium_p99_headroom_x\": " +
           Fmt(premium_p99_15_ms / p99_floor_ms, 3) + ",\n";
    out += "  \"batch_unserved_at_1_5x_pct\": " +
           Fmt(batch_unserved_15_pct, 2) + ",\n";
    out += "  \"transport_errors\": " + std::to_string(total_transport) +
           ",\n";
    out += std::string("  \"pass\": ") + (pass ? "true" : "false") + "\n}\n";
    std::fputs(out.c_str(), stdout);
    return pass ? 0 : 1;
  }

  std::printf("\n=== Front-door overload sweep (saturation ~%.0f req/s) ===\n\n",
              capacity);
  Table t({"load", "tenant", "sent", "goodput", "p99 ms", "shed%", "rej%"});
  for (const Point& p : points) {
    for (const TenantReport* r : {&p.premium, &p.batch}) {
      t.AddRow({Fmt(p.multiple, 1) + "x", r->name,
                FmtCount(static_cast<double>(r->sent)),
                Fmt(r->goodput_rps, 1),
                Fmt(r->latency_us.Quantile(0.99) / 1e3, 1),
                Fmt(Pct(r->shed, r->sent), 1),
                Fmt(Pct(r->rejected_deadline + r->rejected_rate +
                            r->rejected_other,
                        r->sent),
                    1)});
    }
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf(
      "premium p99 headroom %.2fx (need <= 2 of max(p99@0.8x, %.0fms)); "
      "batch unserved @1.5x %.1f%% (need > 5%%); hard 5xx %llu (need 0)\n",
      premium_p99_15_ms / p99_floor_ms, kPremiumDeadlineMs / 2.0,
      batch_unserved_15_pct, static_cast<unsigned long long>(total_hard_5xx));
  std::printf("-> %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
