// Figure 5 — training throughput for LeNet-5 (bs 512), AlexNet (bs 256)
// and ResNet-18 (bs 128) on NVCaffe with the CPU-based, LMDB and DLBooster
// backends, 1 and 2 GPUs. "Performance loss" is relative to the synthetic
// boundary, as in the paper's hatched bars.
//
// `--json` emits the same measurements as one JSON document (for
// bench/run_benches.sh and regression tooling).
#include <cstdio>
#include <cstring>

#include "workflow/report.h"
#include "workflow/training_sim.h"

using namespace dlb;
using namespace dlb::workflow;

namespace {

void RunPanelJson(const char* key, const gpu::DlModel* model,
                  bool fits_memory, bool last) {
  std::printf("  \"%s\": {\"train_batch\": %d, \"backends\": {", key,
              model->train_batch);
  bool first = true;
  for (auto backend : {TrainBackend::kCpu, TrainBackend::kLmdb,
                       TrainBackend::kDlbooster, TrainBackend::kSynthetic}) {
    double tp[2] = {0, 0};
    for (int gpus = 1; gpus <= 2; ++gpus) {
      TrainConfig config;
      config.model = model;
      config.backend = backend;
      config.num_gpus = gpus;
      config.dataset_fits_memory = fits_memory;
      tp[gpus - 1] = SimulateTraining(config).throughput;
    }
    std::printf("%s\n    \"%s\": {\"gpus1_img_s\": %s, \"gpus2_img_s\": %s}",
                first ? "" : ",", TrainBackendName(backend),
                Fmt(tp[0], 1).c_str(), Fmt(tp[1], 1).c_str());
    first = false;
  }
  std::printf("\n  }}%s\n", last ? "" : ",");
}

void RunPanel(const char* title, const gpu::DlModel* model,
              bool fits_memory) {
  std::printf("(%s) batch %d/GPU%s\n", title, model->train_batch,
              fits_memory ? ", dataset cached after epoch 1" : "");
  Table t({"backend", "1 GPU img/s", "loss vs ideal", "2 GPU img/s",
           "loss vs ideal"});
  double ideal[2] = {0, 0};
  for (int gpus = 1; gpus <= 2; ++gpus) {
    TrainConfig config;
    config.model = model;
    config.backend = TrainBackend::kSynthetic;
    config.num_gpus = gpus;
    config.dataset_fits_memory = fits_memory;
    ideal[gpus - 1] = SimulateTraining(config).throughput;
  }
  for (auto backend : {TrainBackend::kCpu, TrainBackend::kLmdb,
                       TrainBackend::kDlbooster}) {
    std::vector<std::string> row{TrainBackendName(backend)};
    for (int gpus = 1; gpus <= 2; ++gpus) {
      TrainConfig config;
      config.model = model;
      config.backend = backend;
      config.num_gpus = gpus;
      config.dataset_fits_memory = fits_memory;
      const double tp = SimulateTraining(config).throughput;
      row.push_back(FmtCount(tp));
      row.push_back(Fmt(100.0 * (1.0 - tp / ideal[gpus - 1]), 0) + "%");
    }
    t.AddRow(row);
  }
  t.AddRow({"ideal boundary", FmtCount(ideal[0]), "-", FmtCount(ideal[1]),
            "-"});
  std::printf("%s\n", t.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  if (json) {
    std::printf("{\n");
    RunPanelJson("lenet5", &gpu::LeNet5(), /*fits_memory=*/true, false);
    RunPanelJson("alexnet", &gpu::AlexNet(), false, false);
    RunPanelJson("resnet18", &gpu::ResNet18(), false, true);
    std::printf("}\n");
    return 0;
  }
  std::printf("=== Figure 5: training throughput by backend ===\n\n");
  RunPanel("a: LeNet-5 on MNIST", &gpu::LeNet5(), /*fits_memory=*/true);
  RunPanel("b: AlexNet on ILSVRC12", &gpu::AlexNet(), false);
  RunPanel("c: ResNet-18 on ILSVRC12", &gpu::ResNet18(), false);
  std::printf(
      "paper shape: DLBooster tracks the boundary on every model; LMDB\n"
      "drops ~30%% at 2 GPUs on AlexNet; CPU-based lands slightly below\n"
      "the boundary while burning an order of magnitude more cores.\n");
  return 0;
}
