#!/usr/bin/env bash
# Unified bench runner: executes every bench that speaks `--json` and
# aggregates the documents into BENCH_<label>.json files in the output
# directory (plus a combined BENCH_all.json manifest).
#
# Usage: bench/run_benches.sh [--quick] [--out DIR] [--diff[=BASELINE_DIR]]
#                             [build_dir] [out_dir]
#   --quick     CI smoke subset: micro_codec + the overhead benches
#               (each self-gates its >= 95% acceptance via its exit code)
#   --out DIR   where BENCH_*.json land (default: <build_dir>/bench_results)
#   --diff      after the run, compare against a committed baseline set with
#               tools/dlb_benchdiff (default baseline: bench/baselines).
#               Writes <out_dir>/benchdiff.md and fails on regression.
#               DIFF_GATE=ratio|all picks the gate class (default: ratio —
#               dimensionless metrics only, safe across machines).
#   build_dir   where the bench binaries live (default: build)
#   out_dir     positional form of --out
#
# Also available as a build target: `cmake --build build --target run_benches`.
set -u

QUICK=0
DIFF=0
BASELINE_DIR="bench/baselines"
OUT_FLAG=""
while :; do
  case "${1:-}" in
    --quick)
      QUICK=1
      shift
      ;;
    --out)
      OUT_FLAG="${2:?--out needs a directory}"
      shift 2
      ;;
    --diff)
      DIFF=1
      shift
      ;;
    --diff=*)
      DIFF=1
      BASELINE_DIR="${1#--diff=}"
      shift
      ;;
    *)
      break
      ;;
  esac
done
BUILD_DIR="${1:-build}"
OUT_DIR="${OUT_FLAG:-${2:-${BUILD_DIR}/bench_results}}"
BENCH_DIR="${BUILD_DIR}/bench"

if [ ! -d "${BENCH_DIR}" ]; then
  echo "error: ${BENCH_DIR} not found — build first (cmake --build ${BUILD_DIR})" >&2
  exit 1
fi
mkdir -p "${OUT_DIR}"

# label -> binary; every entry must support --json on stdout.
if [ "${QUICK}" = 1 ]; then
  BENCHES=(
    "micro_codec:bench_micro_codec"
    "monitor_overhead:bench_monitor_overhead"
    "trace_overhead:bench_trace_overhead"
    "profiler_overhead:bench_profiler_overhead"
    "flight_overhead:bench_flight_overhead"
    "scaleout:bench_scaleout"
    "frontdoor_overload:bench_frontdoor_overload"
  )
else
  BENCHES=(
    "fig5_train_throughput:bench_fig5_train_throughput"
    "fig7_infer_throughput:bench_fig7_infer_throughput"
    "bottleneck_report:bench_misc_bottleneck_report"
    "monitor_overhead:bench_monitor_overhead"
    "trace_overhead:bench_trace_overhead"
    "profiler_overhead:bench_profiler_overhead"
    "flight_overhead:bench_flight_overhead"
    "micro_codec:bench_micro_codec"
    "micro_resize:bench_micro_resize"
    "scaleout:bench_scaleout"
    "frontdoor_overload:bench_frontdoor_overload"
  )
fi

# Build provenance: every BENCH_*.json is stamped with the buildinfo
# record, so dlb_benchdiff reports can say which build produced each side.
BUILDINFO="{}"
if [ -x "${BUILD_DIR}/tools/dlb_buildinfo" ]; then
  BUILDINFO="$("${BUILD_DIR}/tools/dlb_buildinfo" 2>/dev/null || echo '{}')"
fi

# Insert `"buildinfo": <record>,` after the document's opening brace (the
# benches all emit "{\n..."); anything else passes through unstamped.
stamp_buildinfo() {
  awk -v info="${BUILDINFO}" '
    NR == 1 && $0 == "{" { print "{"; print "  \"buildinfo\": " info ","; next }
    { print }'
}

failures=0
ran=()
for entry in "${BENCHES[@]}"; do
  label="${entry%%:*}"
  bin="${BENCH_DIR}/${entry##*:}"
  out="${OUT_DIR}/BENCH_${label}.json"
  if [ ! -x "${bin}" ]; then
    echo "skip  ${label} (missing ${bin})"
    continue
  fi
  echo "run   ${label} -> ${out}"
  if "${bin}" --json > "${out}.raw" 2> "${OUT_DIR}/BENCH_${label}.stderr"; then
    stamp_buildinfo < "${out}.raw" > "${out}"
    rm -f "${out}.raw" "${OUT_DIR}/BENCH_${label}.stderr"
    ran+=("${label}")
  else
    echo "FAIL  ${label} (exit $?, stderr kept alongside)" >&2
    failures=$((failures + 1))
  fi
done

# Combined manifest: {"label": <doc>, ...} — benches emit valid JSON docs.
combined="${OUT_DIR}/BENCH_all.json"
{
  echo "{"
  first=1
  for label in "${ran[@]+"${ran[@]}"}"; do
    [ "${first}" = 1 ] || echo ","
    first=0
    printf '"%s": ' "${label}"
    cat "${OUT_DIR}/BENCH_${label}.json"
  done
  echo "}"
} > "${combined}"

echo "wrote ${combined} (${#ran[@]} benches, ${failures} failures)"

if [ "${DIFF}" = 1 ]; then
  BENCHDIFF="${BUILD_DIR}/tools/dlb_benchdiff"
  if [ ! -x "${BENCHDIFF}" ]; then
    echo "error: ${BENCHDIFF} not found — build the dlb_benchdiff target" >&2
    exit 1
  fi
  echo "diff  ${OUT_DIR} vs ${BASELINE_DIR} (gate=${DIFF_GATE:-ratio})"
  if ! "${BENCHDIFF}" --baseline "${BASELINE_DIR}" --candidate "${OUT_DIR}" \
       --gate "${DIFF_GATE:-ratio}" --markdown "${OUT_DIR}/benchdiff.md"; then
    echo "FAIL  bench regression vs ${BASELINE_DIR} (see ${OUT_DIR}/benchdiff.md)" >&2
    failures=$((failures + 1))
  fi
fi
exit "${failures}"
