#!/usr/bin/env bash
# Unified bench runner: executes every bench that speaks `--json` and
# aggregates the documents into BENCH_<label>.json files in the output
# directory (plus a combined BENCH_all.json manifest).
#
# Usage: bench/run_benches.sh [--quick] [build_dir] [out_dir]
#   --quick    CI smoke subset: micro_codec + the two overhead benches
#              (each self-gates its >= 95% acceptance via its exit code)
#   build_dir  where the bench binaries live (default: build)
#   out_dir    where BENCH_*.json land (default: <build_dir>/bench_results)
#
# Also available as a build target: `cmake --build build --target run_benches`.
set -u

QUICK=0
if [ "${1:-}" = "--quick" ]; then
  QUICK=1
  shift
fi
BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BUILD_DIR}/bench_results}"
BENCH_DIR="${BUILD_DIR}/bench"

if [ ! -d "${BENCH_DIR}" ]; then
  echo "error: ${BENCH_DIR} not found — build first (cmake --build ${BUILD_DIR})" >&2
  exit 1
fi
mkdir -p "${OUT_DIR}"

# label -> binary; every entry must support --json on stdout.
if [ "${QUICK}" = 1 ]; then
  BENCHES=(
    "micro_codec:bench_micro_codec"
    "monitor_overhead:bench_monitor_overhead"
    "trace_overhead:bench_trace_overhead"
  )
else
  BENCHES=(
    "fig5_train_throughput:bench_fig5_train_throughput"
    "fig7_infer_throughput:bench_fig7_infer_throughput"
    "bottleneck_report:bench_misc_bottleneck_report"
    "monitor_overhead:bench_monitor_overhead"
    "trace_overhead:bench_trace_overhead"
    "micro_codec:bench_micro_codec"
    "micro_resize:bench_micro_resize"
  )
fi

failures=0
ran=()
for entry in "${BENCHES[@]}"; do
  label="${entry%%:*}"
  bin="${BENCH_DIR}/${entry##*:}"
  out="${OUT_DIR}/BENCH_${label}.json"
  if [ ! -x "${bin}" ]; then
    echo "skip  ${label} (missing ${bin})"
    continue
  fi
  echo "run   ${label} -> ${out}"
  if "${bin}" --json > "${out}" 2> "${OUT_DIR}/BENCH_${label}.stderr"; then
    rm -f "${OUT_DIR}/BENCH_${label}.stderr"
    ran+=("${label}")
  else
    echo "FAIL  ${label} (exit $?, stderr kept alongside)" >&2
    failures=$((failures + 1))
  fi
done

# Combined manifest: {"label": <doc>, ...} — benches emit valid JSON docs.
combined="${OUT_DIR}/BENCH_all.json"
{
  echo "{"
  first=1
  for label in "${ran[@]+"${ran[@]}"}"; do
    [ "${first}" = 1 ] || echo ","
    first=0
    printf '"%s": ' "${label}"
    cat "${OUT_DIR}/BENCH_${label}.json"
  done
  echo "}"
} > "${combined}"

echo "wrote ${combined} (${#ran[@]} benches, ${failures} failures)"
exit "${failures}"
