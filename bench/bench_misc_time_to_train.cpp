// End-to-end wall-clock view (§2.2(2) + §5.4): an offline backend pays the
// dataset-conversion bill BEFORE the first training step; an online backend
// starts immediately. This bench combines the conversion-rate model with
// the training DES to show time-to-N-epochs per backend on ILSVRC12-scale
// data (1.28 M images, AlexNet, 2 GPUs).
#include <cstdio>

#include "workflow/report.h"
#include "workflow/training_sim.h"

using namespace dlb;
using namespace dlb::workflow;

int main() {
  std::printf("=== Time to train N epochs, AlexNet, 2 GPUs, ILSVRC12 ===\n\n");
  constexpr double kImages = 1281167.0;
  // Caffe's convert_imageset is single-threaded; one core does the offline
  // pass (footnote 4's ">2 hours" regime).
  const double convert_hours =
      kImages / cal::kDbConvertRatePerCore / 3600.0;

  struct Row {
    TrainBackend backend;
    double prep_hours;
  };
  const Row rows[] = {
      {TrainBackend::kCpu, 0.0},
      {TrainBackend::kLmdb, convert_hours},
      {TrainBackend::kDlbooster, 0.0},
  };

  Table t({"backend", "prep (h)", "epoch (h)", "1 epoch total", "10 epochs",
           "90 epochs"});
  for (const Row& row : rows) {
    TrainConfig config;
    config.model = &gpu::AlexNet();
    config.backend = row.backend;
    config.num_gpus = 2;
    config.sim_seconds = 10;
    const double tp = SimulateTraining(config).throughput;
    const double epoch_hours = kImages / tp / 3600.0;
    auto total = [&](int epochs) {
      return Fmt(row.prep_hours + epochs * epoch_hours, 1) + " h";
    };
    t.AddRow({TrainBackendName(row.backend), Fmt(row.prep_hours, 1),
              Fmt(epoch_hours, 2), total(1), total(10), total(90)});
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf(
      "paper anchor (footnote 4): >2 h to prepare the ILSVRC12 LMDB. The\n"
      "conversion bill amortises over many epochs, but is paid again each\n"
      "time the preprocessing recipe changes — and LMDB's contended epoch\n"
      "rate never catches DLBooster's, so offline preparation never pays\n"
      "back here.\n");
  return 0;
}
