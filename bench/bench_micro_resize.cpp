// Micro-benchmarks of the resampling kernels (the resizer unit's software
// twin): filter choice and scale factor.
//
// `--json` emits a fast-vs-reference kernel comparison as one JSON document
// (for bench/run_benches.sh and regression tooling); without it the stock
// google-benchmark harness runs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common/simd.h"
#include "dataplane/synthetic_dataset.h"
#include "image/resize.h"

namespace {

dlb::Image Scene(int w, int h) {
  dlb::DatasetSpec spec = dlb::ImageNetLikeSpec(1, 3);
  spec.width = w;
  spec.height = h;
  spec.dim_jitter = 0;
  return dlb::RenderScene(spec, 0, nullptr);
}

void BM_Resize(benchmark::State& state) {
  const dlb::Image src = Scene(500, 375);
  const auto filter = static_cast<dlb::ResizeFilter>(state.range(0));
  const int target = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto out = dlb::Resize(src, target, target, filter);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Resize)
    ->ArgNames({"filter", "target"})
    ->Args({0, 224})  // nearest
    ->Args({1, 224})  // bilinear
    ->Args({2, 224})  // area
    ->Args({1, 64})
    ->Args({2, 64});

void BM_ResizeShorterSide(benchmark::State& state) {
  const dlb::Image src = Scene(500, 375);
  for (auto _ : state) {
    auto out = dlb::ResizeShorterSide(src, 256);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResizeShorterSide);

// --- `--json` mode: fast kernels vs seed reference path ------------------

/// Milliseconds per call, self-timed. Warms up for ~100 ms (clock ramp,
/// caches), then times several batches and returns the fastest batch mean —
/// robust to scheduler interference, like the stock harness's repetitions.
template <typename Fn>
double TimeMs(Fn&& fn, double batch_ms = 100.0) {
  using clock = std::chrono::steady_clock;
  auto run_batch = [&](double target_ms) {
    int iters = 0;
    const auto start = clock::now();
    double elapsed_ms = 0;
    do {
      fn();
      ++iters;
      elapsed_ms =
          std::chrono::duration<double, std::milli>(clock::now() - start)
              .count();
    } while (elapsed_ms < target_ms);
    return elapsed_ms / iters;
  };
  run_batch(batch_ms);  // warmup
  double best = run_batch(batch_ms);
  for (int i = 1; i < 4; ++i) {
    const double t = run_batch(batch_ms);
    if (t < best) best = t;
  }
  return best;
}

int RunJson() {
#if defined(__GLIBC__)
  // Keep freed pages in the arena. The runtime pipeline decodes into
  // pooled buffers, so per-op heap trim (and the page re-faulting it
  // causes) would be measurement noise here, not kernel cost.
  mallopt(M_TRIM_THRESHOLD, 256 << 20);
  mallopt(M_MMAP_THRESHOLD, 64 << 20);
#endif
  const dlb::Image src = Scene(500, 375);
  struct Case {
    const char* key;
    dlb::ResizeFilter filter;
    int target;
  };
  const Case cases[] = {{"bilinear_224", dlb::ResizeFilter::kBilinear, 224},
                        {"nearest_224", dlb::ResizeFilter::kNearest, 224},
                        {"area_224", dlb::ResizeFilter::kArea, 224},
                        {"bilinear_64", dlb::ResizeFilter::kBilinear, 64}};
  std::printf("{\n");
  std::printf("  \"kernels\": \"%s\",\n", dlb::simd::KernelInfo().c_str());
  std::printf("  \"src\": \"500x375x3\",\n");
  bool first = true;
  for (const Case& c : cases) {
    auto run = [&] {
      auto out = dlb::Resize(src, c.target, c.target, c.filter);
      benchmark::DoNotOptimize(out);
    };
    double fast_ms, ref_ms;
    {
      dlb::simd::ScopedKernelMode mode(dlb::simd::KernelMode::kFast);
      fast_ms = TimeMs(run);
    }
    {
      dlb::simd::ScopedKernelMode mode(dlb::simd::KernelMode::kReference);
      ref_ms = TimeMs(run);
    }
    std::printf("%s  \"%s\": {\"fast_ms\": %.4f, \"reference_ms\": %.4f, "
                "\"speedup\": %.2f}",
                first ? "" : ",\n", c.key, fast_ms, ref_ms, ref_ms / fast_ms);
    first = false;
  }
  std::printf("\n}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return RunJson();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
