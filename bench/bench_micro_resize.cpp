// Micro-benchmarks of the resampling kernels (the resizer unit's software
// twin): filter choice and scale factor.
#include <benchmark/benchmark.h>

#include "dataplane/synthetic_dataset.h"
#include "image/resize.h"

namespace {

dlb::Image Scene(int w, int h) {
  dlb::DatasetSpec spec = dlb::ImageNetLikeSpec(1, 3);
  spec.width = w;
  spec.height = h;
  spec.dim_jitter = 0;
  return dlb::RenderScene(spec, 0, nullptr);
}

void BM_Resize(benchmark::State& state) {
  const dlb::Image src = Scene(500, 375);
  const auto filter = static_cast<dlb::ResizeFilter>(state.range(0));
  const int target = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto out = dlb::Resize(src, target, target, filter);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Resize)
    ->ArgNames({"filter", "target"})
    ->Args({0, 224})  // nearest
    ->Args({1, 224})  // bilinear
    ->Args({2, 224})  // area
    ->Args({1, 64})
    ->Args({2, 64});

void BM_ResizeShorterSide(benchmark::State& state) {
  const dlb::Image src = Scene(500, 375);
  for (auto _ : state) {
    auto out = dlb::ResizeShorterSide(src, 256);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResizeShorterSide);

}  // namespace
