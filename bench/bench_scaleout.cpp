// Multi-device scale-out: N emulated FPGA decoders behind the
// work-stealing dispatcher, measured on the deterministic DES.
//
// Two questions, mirroring the tentpole:
//   1. Does adding devices scale? Uniform corpus, round-robin sharding,
//      1/2/4 devices. Acceptance: >= 1.7x at 2 devices, >= 3x at 4.
//   2. Does stealing rescue a skewed shard? Two devices where shard 0's
//      images are ~8x the work of shard 1's. Static sharding (steal off)
//      leaves device 1 idle while device 0 drowns; the watermark thief
//      rebalances. Acceptance: steal-on recovers >= 1.25x steal-off.
//
// Each device is an independent FpgaDecoderSim on one shared scheduler;
// the feed loop reproduces the router's policy (local deque first, then
// steal from the deepest victim backlogged beyond the watermark), so the
// measured effect is the dispatch policy, not host thread scheduling.
//
// `--json` emits the measurements as one JSON document.
#include <cstdio>
#include <cstring>
#include <deque>
#include <vector>

#include "fpga/fpga_decoder_sim.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::fpga;
using namespace dlb::workflow;

namespace {

constexpr int kWatermark = 4;

DecodeJob UniformJob() {
  DecodeJob job;
  job.encoded_bytes = 60 * 1024;
  job.pixels = 500 * 375;
  job.out_bytes = 224 * 224 * 3;
  return job;
}

DecodeJob HeavyJob() {
  // ~8x the decode work of the uniform job (entropy bytes and pixels).
  DecodeJob job;
  job.encoded_bytes = 480 * 1024;
  job.pixels = 1500 * 1000;
  job.out_bytes = 224 * 224 * 3;
  return job;
}

struct RunResult {
  double img_s = 0.0;
  uint64_t steals = 0;
};

// Drive `shards` of pending jobs through one device per shard with the
// router's policy. Returns emergent throughput and the steal count.
RunResult RunShards(std::vector<std::deque<DecodeJob>> shards, bool steal) {
  sim::Scheduler sched;
  const int n = static_cast<int>(shards.size());
  size_t total = 0;
  for (const auto& q : shards) total += q.size();
  std::vector<std::unique_ptr<FpgaDecoderSim>> devices;
  for (int d = 0; d < n; ++d) {
    devices.push_back(std::make_unique<FpgaDecoderSim>(&sched,
                                                       DecoderConfig{}));
  }
  size_t completed = 0;
  uint64_t steals = 0;
  while (completed < total) {
    bool progress = false;
    for (int d = 0; d < n; ++d) {
      while (devices[d]->FifoSpace() > 0) {
        std::deque<DecodeJob>* src = nullptr;
        bool is_steal = false;
        if (!shards[static_cast<size_t>(d)].empty()) {
          src = &shards[static_cast<size_t>(d)];
        } else if (steal) {
          // Deepest victim backlogged beyond the watermark; take the back
          // (the router's thief end).
          size_t deepest = kWatermark;
          for (int v = 0; v < n; ++v) {
            if (v == d) continue;
            if (shards[static_cast<size_t>(v)].size() > deepest) {
              deepest = shards[static_cast<size_t>(v)].size();
              src = &shards[static_cast<size_t>(v)];
              is_steal = true;
            }
          }
        }
        if (src == nullptr) break;
        DecodeJob job = is_steal ? src->back() : src->front();
        if (!devices[d]->SubmitDecode(job, [&completed] { ++completed; })) {
          break;  // FIFO full despite FifoSpace — be safe, step the clock
        }
        if (is_steal) {
          src->pop_back();
          ++steals;
        } else {
          src->pop_front();
        }
        progress = true;
      }
    }
    if (!progress && !sched.Step()) break;
  }
  sched.Run();
  const double seconds = sim::ToSeconds(sched.Now());
  return {seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0,
          steals};
}

// Uniform corpus dealt round-robin across the shards.
RunResult RunUniform(int devices, size_t images) {
  std::vector<std::deque<DecodeJob>> shards(static_cast<size_t>(devices));
  for (size_t i = 0; i < images; ++i) {
    shards[i % static_cast<size_t>(devices)].push_back(UniformJob());
  }
  return RunShards(std::move(shards), /*steal=*/true);
}

// Skewed two-device corpus: shard 0's half is ~8x heavier.
RunResult RunSkewed(size_t images, bool steal) {
  std::vector<std::deque<DecodeJob>> shards(2);
  for (size_t i = 0; i < images; ++i) {
    if (i % 2 == 0) {
      shards[0].push_back(HeavyJob());
    } else {
      shards[1].push_back(UniformJob());
    }
  }
  return RunShards(std::move(shards), steal);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  constexpr size_t kImages = 512;

  const RunResult one = RunUniform(1, kImages);
  const RunResult two = RunUniform(2, kImages);
  const RunResult four = RunUniform(4, kImages);
  const double speedup2 = one.img_s > 0.0 ? two.img_s / one.img_s : 0.0;
  const double speedup4 = one.img_s > 0.0 ? four.img_s / one.img_s : 0.0;

  const RunResult skew_off = RunSkewed(kImages / 2, /*steal=*/false);
  const RunResult skew_on = RunSkewed(kImages / 2, /*steal=*/true);
  const double recovery =
      skew_off.img_s > 0.0 ? skew_on.img_s / skew_off.img_s : 0.0;

  const bool pass = speedup2 >= 1.7 && speedup4 >= 3.0 && recovery >= 1.25 &&
                    skew_on.steals > 0;

  if (json) {
    std::printf(
        "{\n  \"images\": %zu,\n  \"dev1_img_s\": %s,\n"
        "  \"dev2_img_s\": %s,\n  \"dev4_img_s\": %s,\n"
        "  \"speedup_2dev\": %s,\n  \"speedup_4dev\": %s,\n"
        "  \"skew_steal_off_img_s\": %s,\n  \"skew_steal_on_img_s\": %s,\n"
        "  \"steal_recovery_ratio\": %s,\n  \"steals\": %llu,\n"
        "  \"pass\": %s\n}\n",
        kImages, Fmt(one.img_s, 1).c_str(), Fmt(two.img_s, 1).c_str(),
        Fmt(four.img_s, 1).c_str(), Fmt(speedup2, 3).c_str(),
        Fmt(speedup4, 3).c_str(), Fmt(skew_off.img_s, 1).c_str(),
        Fmt(skew_on.img_s, 1).c_str(), Fmt(recovery, 3).c_str(),
        static_cast<unsigned long long>(skew_on.steals),
        pass ? "true" : "false");
    return pass ? 0 : 1;
  }

  std::printf("=== Multi-device scale-out & work stealing ===\n\n");
  std::printf("uniform corpus, %zu images, round-robin shards:\n", kImages);
  Table t({"devices", "img/s", "speedup"});
  t.AddRow({"1", FmtCount(one.img_s), "1.0x"});
  t.AddRow({"2", FmtCount(two.img_s), Fmt(speedup2, 2) + "x"});
  t.AddRow({"4", FmtCount(four.img_s), Fmt(speedup4, 2) + "x"});
  std::printf("%s\n", t.Render().c_str());

  std::printf("skewed corpus (shard 0 ~8x heavier), 2 devices, %zu images:\n",
              kImages / 2);
  Table s({"stealing", "img/s", "steals"});
  s.AddRow({"off (static shards)", FmtCount(skew_off.img_s),
            FmtCount(static_cast<double>(skew_off.steals))});
  s.AddRow({"on (watermark thief)", FmtCount(skew_on.img_s),
            FmtCount(static_cast<double>(skew_on.steals))});
  std::printf("%s\n", s.Render().c_str());
  std::printf("-> 2-dev speedup %.2fx (need >= 1.7), 4-dev %.2fx (need >= 3),"
              " steal recovery %.2fx (need >= 1.25): %s\n",
              speedup2, speedup4, recovery, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
