// Figure 6 — CPU cost in the training experiments.
//   (a)-(c): cores per backend/GPU-count for the three models
//   (d): the per-category breakdown for DLBooster-backed ResNet-18
//        (paper: 0.3 preprocess / 0.15 transform / 0.95 launch / 0.12 update)
#include <cstdio>

#include "workflow/report.h"
#include "workflow/training_sim.h"

using namespace dlb;
using namespace dlb::workflow;

namespace {

void RunPanel(const char* title, const gpu::DlModel* model,
              bool fits_memory) {
  std::printf("(%s)\n", title);
  Table t({"backend", "1 GPU cores", "2 GPU cores", "cores/GPU (2)"});
  for (auto backend : {TrainBackend::kCpu, TrainBackend::kLmdb,
                       TrainBackend::kDlbooster}) {
    double cores[2];
    for (int gpus = 1; gpus <= 2; ++gpus) {
      TrainConfig config;
      config.model = model;
      config.backend = backend;
      config.num_gpus = gpus;
      config.dataset_fits_memory = fits_memory;
      cores[gpus - 1] = SimulateTraining(config).cpu_cores;
    }
    t.AddRow({TrainBackendName(backend), Fmt(cores[0], 1), Fmt(cores[1], 1),
              Fmt(cores[1] / 2, 1)});
  }
  std::printf("%s\n", t.Render().c_str());
}

}  // namespace

int main() {
  std::printf("=== Figure 6: CPU cost in training ===\n\n");
  RunPanel("a: LeNet-5 on MNIST, bs 512", &gpu::LeNet5(), true);
  RunPanel("b: AlexNet on ILSVRC12, bs 256", &gpu::AlexNet(), false);
  RunPanel("c: ResNet-18 on ILSVRC12, bs 128", &gpu::ResNet18(), false);

  std::printf("(d) DLBooster + ResNet-18 breakdown (cores)\n");
  TrainConfig config;
  config.model = &gpu::ResNet18();
  config.backend = TrainBackend::kDlbooster;
  config.num_gpus = 1;
  TrainResult r = SimulateTraining(config);
  Table d({"category", "cores", "paper"});
  auto row = [&](const char* category, const char* paper) {
    auto it = r.cpu_by_category.find(category);
    d.AddRow({category, Fmt(it == r.cpu_by_category.end() ? 0 : it->second, 2),
              paper});
  };
  row("preprocess", "0.30");
  row("transform", "0.15");
  row("kernel_launch", "0.95");
  row("model_update", "0.12");
  d.AddRow({"total", Fmt(r.cpu_cores, 2), "~1.5"});
  std::printf("%s\n", d.Render().c_str());
  std::printf(
      "paper shape: DLBooster ~1.5 cores/GPU, LMDB ~2.5, CPU-based ~12\n"
      "(AlexNet) / ~7 (ResNet-18) cores per GPU.\n");
  return 0;
}
