// Figure 7 — online inference throughput on TensorRT-style engines for
// GoogLeNet, VGG-16 and ResNet-50 with the CPU-based, nvJPEG and DLBooster
// backends across batch sizes. fp16, 5 clients over a 40 Gbps fabric,
// 500x375 JPEGs. Panel (c) runs 2 GPUs + 2 decoder pipelines (see
// EXPERIMENTS.md for why).
// `--json` emits the same measurements as one JSON document (for
// bench/run_benches.sh and regression tooling).
#include <cstdio>
#include <cstring>
#include <vector>

#include "workflow/inference_sim.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::workflow;

namespace {

void RunPanelJson(const char* key, const gpu::DlModel* model, int max_batch,
                  int num_gpus, int pipelines, bool last) {
  std::printf("  \"%s\": {\"gpus\": %d, \"pipelines\": %d, \"backends\": {",
              key, num_gpus, pipelines);
  bool first_backend = true;
  for (auto backend :
       {InferBackend::kCpu, InferBackend::kNvjpeg, InferBackend::kDlbooster}) {
    std::printf("%s\n    \"%s\": {", first_backend ? "" : ",",
                InferBackendName(backend));
    bool first_batch = true;
    for (int b = 1; b <= max_batch; b *= 2) {
      InferConfig config;
      config.model = model;
      config.backend = backend;
      config.batch_size = b;
      config.num_gpus = num_gpus;
      config.fpga_pipelines = pipelines;
      config.sim_seconds = 8.0;
      std::printf("%s\"bs%d\": %s", first_batch ? "" : ", ", b,
                  Fmt(SimulateInference(config).throughput, 1).c_str());
      first_batch = false;
    }
    std::printf("}");
    first_backend = false;
  }
  std::printf("\n  }}%s\n", last ? "" : ",");
}

void RunPanel(const char* title, const gpu::DlModel* model, int max_batch,
              int num_gpus, int pipelines) {
  std::printf("(%s)%s\n", title,
              num_gpus > 1 ? " [2 GPUs, 2 decoder pipelines]" : "");
  std::vector<int> batches;
  for (int b = 1; b <= max_batch; b *= 2) batches.push_back(b);
  std::vector<std::string> headers = {"backend"};
  for (int b : batches) headers.push_back("bs" + std::to_string(b));
  Table t(headers);
  for (auto backend :
       {InferBackend::kCpu, InferBackend::kNvjpeg, InferBackend::kDlbooster}) {
    std::vector<std::string> row{InferBackendName(backend)};
    for (int b : batches) {
      InferConfig config;
      config.model = model;
      config.backend = backend;
      config.batch_size = b;
      config.num_gpus = num_gpus;
      config.fpga_pipelines = pipelines;
      config.sim_seconds = 8.0;
      row.push_back(FmtCount(SimulateInference(config).throughput));
    }
    t.AddRow(row);
  }
  std::printf("%s\n", t.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  if (json) {
    std::printf("{\n");
    RunPanelJson("googlenet", &gpu::GoogLeNet(), 32, 1, 1, false);
    RunPanelJson("vgg16", &gpu::Vgg16(), 32, 1, 1, false);
    RunPanelJson("resnet50", &gpu::ResNet50(), 64, 2, 2, true);
    std::printf("}\n");
    return 0;
  }
  std::printf(
      "=== Figure 7: inference throughput (img/s) vs batch size ===\n\n");
  RunPanel("a: GoogLeNet", &gpu::GoogLeNet(), 32, 1, 1);
  RunPanel("b: VGG-16", &gpu::Vgg16(), 32, 1, 1);
  RunPanel("c: ResNet-50", &gpu::ResNet50(), 64, 2, 2);
  std::printf(
      "paper shape: DLBooster 1.2x-2.4x over the baselines; nvJPEG lowest\n"
      "(decode steals 30-40%% of the GPU); DLBooster saturates near the\n"
      "decoder bound (~2.4k img/s per pipeline) beyond batch 16 on\n"
      "GoogLeNet; adding pipelines lifts the bound (panel c).\n");
  return 0;
}
