// Figure 7 — online inference throughput on TensorRT-style engines for
// GoogLeNet, VGG-16 and ResNet-50 with the CPU-based, nvJPEG and DLBooster
// backends across batch sizes. fp16, 5 clients over a 40 Gbps fabric,
// 500x375 JPEGs. Panel (c) runs 2 GPUs + 2 decoder pipelines (see
// EXPERIMENTS.md for why).
#include <cstdio>
#include <vector>

#include "workflow/inference_sim.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::workflow;

namespace {

void RunPanel(const char* title, const gpu::DlModel* model, int max_batch,
              int num_gpus, int pipelines) {
  std::printf("(%s)%s\n", title,
              num_gpus > 1 ? " [2 GPUs, 2 decoder pipelines]" : "");
  std::vector<int> batches;
  for (int b = 1; b <= max_batch; b *= 2) batches.push_back(b);
  std::vector<std::string> headers = {"backend"};
  for (int b : batches) headers.push_back("bs" + std::to_string(b));
  Table t(headers);
  for (auto backend :
       {InferBackend::kCpu, InferBackend::kNvjpeg, InferBackend::kDlbooster}) {
    std::vector<std::string> row{InferBackendName(backend)};
    for (int b : batches) {
      InferConfig config;
      config.model = model;
      config.backend = backend;
      config.batch_size = b;
      config.num_gpus = num_gpus;
      config.fpga_pipelines = pipelines;
      config.sim_seconds = 8.0;
      row.push_back(FmtCount(SimulateInference(config).throughput));
    }
    t.AddRow(row);
  }
  std::printf("%s\n", t.Render().c_str());
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 7: inference throughput (img/s) vs batch size ===\n\n");
  RunPanel("a: GoogLeNet", &gpu::GoogLeNet(), 32, 1, 1);
  RunPanel("b: VGG-16", &gpu::Vgg16(), 32, 1, 1);
  RunPanel("c: ResNet-50", &gpu::ResNet50(), 64, 2, 2);
  std::printf(
      "paper shape: DLBooster 1.2x-2.4x over the baselines; nvJPEG lowest\n"
      "(decode steals 30-40%% of the GPU); DLBooster saturates near the\n"
      "decoder bound (~2.4k img/s per pipeline) beyond batch 16 on\n"
      "GoogLeNet; adding pipelines lifts the bound (panel c).\n");
  return 0;
}
