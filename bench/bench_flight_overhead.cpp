// Flight-recorder overhead: an always-armed black box must not tax the
// pipeline it protects.
//
// End-to-end dlbooster throughput is measured with the recorder off vs
// armed (flight_dir set — which also implies tracing and info-level events,
// i.e. the full retained-ring cost) plus a declared SLO evaluated at the
// default cadence. No trigger fires during the run, so this measures the
// steady-state cost of being ready: ring writes, sampler + SLO threads.
// Acceptance: on/off >= 0.95 (ISSUE 8).
//
// `--json` emits the measurements as one JSON document.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::workflow;

namespace {

double RunPipeline(const Dataset& ds, size_t num_images, bool armed,
                   const std::string& flight_dir) {
  core::PipelineConfig config;
  config.backend = "dlbooster";
  config.options.batch_size = 16;
  config.options.resize_w = 224;
  config.options.resize_h = 224;
  config.max_images = num_images;
  if (armed) {
    // A generous objective that never burns: the cost under test is the
    // recorder being armed, not a bundle write.
    config.slo = "infer_p99<10s/30s";
    config.flight_dir = flight_dir;
  }
  auto pipeline = core::PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.manifest, ds.store.get())
                      .Build();
  if (!pipeline.ok()) {
    std::printf("  pipeline build failed: %s\n",
                pipeline.status().ToString().c_str());
    return 0.0;
  }
  while (pipeline.value()->NextBatch().ok()) {
  }
  return pipeline.value()->Stats().images_per_second;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  if (!json) std::printf("=== Flight recorder overhead ===\n\n");

  constexpr size_t kImages = 256;
  constexpr int kReps = 5;
  auto ds = GenerateDataset(ImageNetLikeSpec(kImages));
  if (!ds.ok()) {
    std::printf("dataset generation failed: %s\n",
                ds.status().ToString().c_str());
    return 1;
  }
  const std::string flight_dir =
      (std::filesystem::temp_directory_path() / "dlb_bench_flight").string();

  // Alternate off/armed runs (best of kReps each) so drift hits both
  // equally.
  double best_off = 0.0, best_on = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    best_off = std::max(best_off,
                        RunPipeline(ds.value(), kImages, false, flight_dir));
    best_on = std::max(best_on,
                       RunPipeline(ds.value(), kImages, true, flight_dir));
  }
  std::filesystem::remove_all(flight_dir);
  const double ratio = best_off > 0.0 ? best_on / best_off : 0.0;

  if (json) {
    std::printf("{\n  \"images\": %zu,\n  \"off_img_s\": %s,\n"
                "  \"on_img_s\": %s,\n  \"on_off_ratio\": %s,\n"
                "  \"pass\": %s\n}\n",
                kImages, Fmt(best_off, 1).c_str(), Fmt(best_on, 1).c_str(),
                Fmt(ratio, 3).c_str(), ratio >= 0.95 ? "true" : "false");
    return ratio >= 0.95 ? 0 : 1;
  }

  std::printf("end-to-end, dlbooster pipeline, %zu images, best of %d:\n",
              kImages, kReps);
  Table t({"flight recorder", "images / s"});
  t.AddRow({"off", Fmt(best_off, 0)});
  t.AddRow({"armed (slo + tracing + events)", Fmt(best_on, 0)});
  std::printf("%s", t.Render().c_str());
  std::printf("-> recorder-armed keeps %.1f%% of recorder-off throughput ",
              100.0 * ratio);
  if (ratio >= 0.95) {
    std::printf("(PASS: >= 95%%)\n");
    return 0;
  }
  std::printf("(FAIL: < 95%%)\n");
  return 1;
}
