// Ablation (§3.4.2): recycled HugePage-style batch pool vs allocating each
// batch buffer on demand. Real measurements on the runtime pool: the pool
// turns allocation + page-faulting into a queue pop.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "hostbridge/hugepage_pool.h"

namespace {

constexpr size_t kBatchBytes = 32 * 256 * 256 * 3;  // a real batch buffer

void BM_PoolAcquireRelease(benchmark::State& state) {
  dlb::HugePagePool pool(kBatchBytes, 4);
  for (auto _ : state) {
    auto buffer = pool.FreeQueue().TryPop();
    benchmark::DoNotOptimize(buffer);
    // Touch one cache line per page the way the DMA engine would.
    (*buffer)->data[0] = 1;
    pool.Recycle(*buffer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAcquireRelease);

void BM_FreshAllocationPerBatch(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<uint8_t> buffer(kBatchBytes);
    // Same single-touch as the pool case; the cost difference is the
    // allocation + zeroing of 6 MiB per batch.
    buffer[0] = 1;
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreshAllocationPerBatch);

void BM_PoolFullWritePath(benchmark::State& state) {
  dlb::HugePagePool pool(kBatchBytes, 4);
  for (auto _ : state) {
    auto buffer = pool.FreeQueue().TryPop();
    std::memset((*buffer)->data, 42, kBatchBytes);
    pool.Recycle(*buffer);
  }
  state.SetBytesProcessed(state.iterations() * kBatchBytes);
}
BENCHMARK(BM_PoolFullWritePath);

void BM_FreshAllocationFullWritePath(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<uint8_t> buffer(kBatchBytes);
    std::memset(buffer.data(), 42, kBatchBytes);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(state.iterations() * kBatchBytes);
}
BENCHMARK(BM_FreshAllocationFullWritePath);

void BM_AddressTranslation(benchmark::State& state) {
  dlb::HugePagePool pool(kBatchBytes, 4);
  auto buffer = pool.FreeQueue().TryPop();
  for (auto _ : state) {
    auto phys = pool.VirtToPhys((*buffer)->data + 1024);
    auto virt = pool.PhysToVirt(phys.value());
    benchmark::DoNotOptimize(virt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressTranslation);

}  // namespace
