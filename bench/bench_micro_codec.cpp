// Micro-benchmarks of the real JPEG codec stages on this machine — the
// functional payload the runtime pipeline executes. (The paper's absolute
// rates come from Xeon E5 / Arria-10 hardware; these numbers characterise
// the reproduction's software decoder.)
//
// `--json` emits a fast-vs-reference kernel comparison as one JSON document
// (for bench/run_benches.sh and regression tooling); without it the stock
// google-benchmark harness runs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "codec/jpeg_decoder.h"
#include "codec/jpeg_encoder.h"
#include "codec/png.h"
#include "common/simd.h"
#include "dataplane/synthetic_dataset.h"
#include "image/resize.h"

namespace {

dlb::Bytes EncodedScene(int w, int h) {
  dlb::DatasetSpec spec = dlb::ImageNetLikeSpec(1, 7);
  spec.width = w;
  spec.height = h;
  spec.dim_jitter = 0;
  dlb::Image img = dlb::RenderScene(spec, 0, nullptr);
  auto encoded = dlb::jpeg::Encode(img);
  return encoded.value();
}

void BM_JpegFullDecode(benchmark::State& state) {
  const dlb::Bytes data = EncodedScene(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto img = dlb::jpeg::Decode(data);
    benchmark::DoNotOptimize(img);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_JpegFullDecode)
    ->Args({500, 375})   // paper's average inference input
    ->Args({224, 224})
    ->Args({28, 28});    // MNIST

void BM_JpegScaledDecode(benchmark::State& state) {
  // DCT-domain decode-to-scale at 1/denom; compare against BM_JpegFullDecode
  // plus a resize to gauge the preprocessing saving.
  const dlb::Bytes data = EncodedScene(500, 375);
  dlb::jpeg::DecodeOptions opts;
  opts.scale_denom = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto img = dlb::jpeg::Decode(data, opts);
    benchmark::DoNotOptimize(img);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_JpegScaledDecode)->Arg(2)->Arg(4)->Arg(8);

void BM_JpegParseHeaders(benchmark::State& state) {
  const dlb::Bytes data = EncodedScene(500, 375);
  for (auto _ : state) {
    auto header = dlb::jpeg::ParseHeaders(data);
    benchmark::DoNotOptimize(header);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JpegParseHeaders);

void BM_JpegEntropyDecode(benchmark::State& state) {
  const dlb::Bytes data = EncodedScene(500, 375);
  auto header = dlb::jpeg::ParseHeaders(data);
  for (auto _ : state) {
    auto coeffs = dlb::jpeg::EntropyDecode(header.value(), data);
    benchmark::DoNotOptimize(coeffs);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_JpegEntropyDecode);

void BM_JpegInverseTransform(benchmark::State& state) {
  const dlb::Bytes data = EncodedScene(500, 375);
  auto header = dlb::jpeg::ParseHeaders(data);
  auto coeffs = dlb::jpeg::EntropyDecode(header.value(), data);
  for (auto _ : state) {
    auto planes = dlb::jpeg::InverseTransform(header.value(), coeffs.value());
    benchmark::DoNotOptimize(planes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JpegInverseTransform);

void BM_JpegColorReconstruct(benchmark::State& state) {
  const dlb::Bytes data = EncodedScene(500, 375);
  auto header = dlb::jpeg::ParseHeaders(data);
  auto coeffs = dlb::jpeg::EntropyDecode(header.value(), data);
  auto planes = dlb::jpeg::InverseTransform(header.value(), coeffs.value());
  for (auto _ : state) {
    auto img = dlb::jpeg::ColorReconstruct(header.value(), planes.value());
    benchmark::DoNotOptimize(img);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JpegColorReconstruct);

void BM_PngDecode(benchmark::State& state) {
  dlb::DatasetSpec spec = dlb::ImageNetLikeSpec(1, 8);
  spec.width = static_cast<int>(state.range(0));
  spec.height = static_cast<int>(state.range(1));
  spec.dim_jitter = 0;
  dlb::Image img = dlb::RenderScene(spec, 0, nullptr);
  const dlb::Bytes data = dlb::png::Encode(img).value();
  for (auto _ : state) {
    auto decoded = dlb::png::Decode(data);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_PngDecode)->Args({500, 375})->Args({224, 224});

void BM_JpegEncode(benchmark::State& state) {
  dlb::DatasetSpec spec = dlb::ImageNetLikeSpec(1, 9);
  spec.width = 500;
  spec.height = 375;
  spec.dim_jitter = 0;
  dlb::Image img = dlb::RenderScene(spec, 0, nullptr);
  for (auto _ : state) {
    auto encoded = dlb::jpeg::Encode(img);
    benchmark::DoNotOptimize(encoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JpegEncode);

// --- `--json` mode: fast kernels vs seed reference path ------------------

/// Milliseconds per call, self-timed. Warms up for ~100 ms (clock ramp,
/// caches), then times several batches and returns the fastest batch mean —
/// robust to scheduler interference, like the stock harness's repetitions.
template <typename Fn>
double TimeMs(Fn&& fn, double batch_ms = 100.0) {
  using clock = std::chrono::steady_clock;
  auto run_batch = [&](double target_ms) {
    int iters = 0;
    const auto start = clock::now();
    double elapsed_ms = 0;
    do {
      fn();
      ++iters;
      elapsed_ms =
          std::chrono::duration<double, std::milli>(clock::now() - start)
              .count();
    } while (elapsed_ms < target_ms);
    return elapsed_ms / iters;
  };
  run_batch(batch_ms);  // warmup
  double best = run_batch(batch_ms);
  for (int i = 1; i < 4; ++i) {
    const double t = run_batch(batch_ms);
    if (t < best) best = t;
  }
  return best;
}

int RunJson() {
#if defined(__GLIBC__)
  // Keep freed pages in the arena. The runtime pipeline decodes into
  // pooled buffers, so per-op heap trim (and the page re-faulting it
  // causes) would be measurement noise here, not kernel cost.
  mallopt(M_TRIM_THRESHOLD, 256 << 20);
  mallopt(M_MMAP_THRESHOLD, 64 << 20);
#endif
  const dlb::Bytes data = EncodedScene(500, 375);
  auto decode = [&] {
    auto img = dlb::jpeg::Decode(data);
    benchmark::DoNotOptimize(img);
  };

  struct Stage {
    const char* key;
    double fast_ms;
    double ref_ms;
  };
  Stage stages[] = {{"full_decode", 0, 0},
                    {"entropy_decode", 0, 0},
                    {"inverse_transform", 0, 0},
                    {"color_reconstruct", 0, 0}};

  // The headline number first, on a clean heap.
  {
    dlb::simd::ScopedKernelMode mode(dlb::simd::KernelMode::kFast);
    stages[0].fast_ms = TimeMs(decode, 150.0);
  }
  {
    dlb::simd::ScopedKernelMode mode(dlb::simd::KernelMode::kReference);
    stages[0].ref_ms = TimeMs(decode, 150.0);
  }

  auto header = dlb::jpeg::ParseHeaders(data);
  auto entropy = [&] {
    auto coeffs = dlb::jpeg::EntropyDecode(header.value(), data);
    benchmark::DoNotOptimize(coeffs);
  };
  auto coeffs = dlb::jpeg::EntropyDecode(header.value(), data);
  auto idct = [&] {
    auto planes = dlb::jpeg::InverseTransform(header.value(), coeffs.value());
    benchmark::DoNotOptimize(planes);
  };
  auto planes = dlb::jpeg::InverseTransform(header.value(), coeffs.value());
  auto color = [&] {
    auto img = dlb::jpeg::ColorReconstruct(header.value(), planes.value());
    benchmark::DoNotOptimize(img);
  };
  {
    dlb::simd::ScopedKernelMode mode(dlb::simd::KernelMode::kFast);
    stages[1].fast_ms = TimeMs(entropy);
    stages[2].fast_ms = TimeMs(idct);
    stages[3].fast_ms = TimeMs(color);
  }
  {
    dlb::simd::ScopedKernelMode mode(dlb::simd::KernelMode::kReference);
    stages[1].ref_ms = TimeMs(entropy);
    stages[2].ref_ms = TimeMs(idct);
    stages[3].ref_ms = TimeMs(color);
  }

  // Decode-to-scale vs the full-decode-equivalent: full decode + bilinear
  // resize to the same output size (what a pipeline without scaled decode
  // must run to produce the same geometry). Both sides use fast kernels.
  struct ScaledStage {
    const char* key;
    int denom;
    double scaled_ms;
    double full_ms;
  };
  ScaledStage scaled[] = {{"scaled_decode_1_2", 2, 0, 0},
                          {"scaled_decode_1_4", 4, 0, 0},
                          {"scaled_decode_1_8", 8, 0, 0}};
  {
    dlb::simd::ScopedKernelMode mode(dlb::simd::KernelMode::kFast);
    for (ScaledStage& s : scaled) {
      dlb::jpeg::DecodeOptions opts;
      opts.scale_denom = s.denom;
      const int out_w = dlb::jpeg::ScaledDim(500, s.denom);
      const int out_h = dlb::jpeg::ScaledDim(375, s.denom);
      s.scaled_ms = TimeMs([&] {
        auto img = dlb::jpeg::Decode(data, opts);
        benchmark::DoNotOptimize(img);
      });
      s.full_ms = TimeMs([&] {
        auto img = dlb::jpeg::Decode(data);
        auto resized =
            dlb::Resize(img.value(), out_w, out_h, dlb::ResizeFilter::kBilinear);
        benchmark::DoNotOptimize(resized);
      });
    }
  }

  std::printf("{\n");
  std::printf("  \"kernels\": \"%s\",\n", dlb::simd::KernelInfo().c_str());
  std::printf("  \"image\": \"500x375\",\n");
  std::printf("  \"jpeg_bytes\": %zu,\n", data.size());
  bool first = true;
  for (const Stage& s : stages) {
    std::printf("%s  \"%s\": {\"fast_ms\": %.4f, \"reference_ms\": %.4f, "
                "\"fast_img_s\": %.1f, \"reference_img_s\": %.1f, "
                "\"speedup\": %.2f}",
                first ? "" : ",\n", s.key, s.fast_ms, s.ref_ms,
                1000.0 / s.fast_ms, 1000.0 / s.ref_ms, s.ref_ms / s.fast_ms);
    first = false;
  }
  for (const ScaledStage& s : scaled) {
    std::printf(",\n  \"%s\": {\"scaled_ms\": %.4f, "
                "\"full_decode_resize_ms\": %.4f, \"scaled_img_s\": %.1f, "
                "\"full_img_s\": %.1f, \"speedup\": %.2f}",
                s.key, s.scaled_ms, s.full_ms, 1000.0 / s.scaled_ms,
                1000.0 / s.full_ms, s.full_ms / s.scaled_ms);
  }
  std::printf("\n}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return RunJson();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
