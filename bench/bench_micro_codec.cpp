// Micro-benchmarks of the real JPEG codec stages on this machine — the
// functional payload the runtime pipeline executes. (The paper's absolute
// rates come from Xeon E5 / Arria-10 hardware; these numbers characterise
// the reproduction's software decoder.)
#include <benchmark/benchmark.h>

#include "codec/jpeg_decoder.h"
#include "codec/jpeg_encoder.h"
#include "codec/png.h"
#include "dataplane/synthetic_dataset.h"

namespace {

dlb::Bytes EncodedScene(int w, int h) {
  dlb::DatasetSpec spec = dlb::ImageNetLikeSpec(1, 7);
  spec.width = w;
  spec.height = h;
  spec.dim_jitter = 0;
  dlb::Image img = dlb::RenderScene(spec, 0, nullptr);
  auto encoded = dlb::jpeg::Encode(img);
  return encoded.value();
}

void BM_JpegFullDecode(benchmark::State& state) {
  const dlb::Bytes data = EncodedScene(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto img = dlb::jpeg::Decode(data);
    benchmark::DoNotOptimize(img);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_JpegFullDecode)
    ->Args({500, 375})   // paper's average inference input
    ->Args({224, 224})
    ->Args({28, 28});    // MNIST

void BM_JpegParseHeaders(benchmark::State& state) {
  const dlb::Bytes data = EncodedScene(500, 375);
  for (auto _ : state) {
    auto header = dlb::jpeg::ParseHeaders(data);
    benchmark::DoNotOptimize(header);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JpegParseHeaders);

void BM_JpegEntropyDecode(benchmark::State& state) {
  const dlb::Bytes data = EncodedScene(500, 375);
  auto header = dlb::jpeg::ParseHeaders(data);
  for (auto _ : state) {
    auto coeffs = dlb::jpeg::EntropyDecode(header.value(), data);
    benchmark::DoNotOptimize(coeffs);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_JpegEntropyDecode);

void BM_JpegInverseTransform(benchmark::State& state) {
  const dlb::Bytes data = EncodedScene(500, 375);
  auto header = dlb::jpeg::ParseHeaders(data);
  auto coeffs = dlb::jpeg::EntropyDecode(header.value(), data);
  for (auto _ : state) {
    auto planes = dlb::jpeg::InverseTransform(header.value(), coeffs.value());
    benchmark::DoNotOptimize(planes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JpegInverseTransform);

void BM_JpegColorReconstruct(benchmark::State& state) {
  const dlb::Bytes data = EncodedScene(500, 375);
  auto header = dlb::jpeg::ParseHeaders(data);
  auto coeffs = dlb::jpeg::EntropyDecode(header.value(), data);
  auto planes = dlb::jpeg::InverseTransform(header.value(), coeffs.value());
  for (auto _ : state) {
    auto img = dlb::jpeg::ColorReconstruct(header.value(), planes.value());
    benchmark::DoNotOptimize(img);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JpegColorReconstruct);

void BM_PngDecode(benchmark::State& state) {
  dlb::DatasetSpec spec = dlb::ImageNetLikeSpec(1, 8);
  spec.width = static_cast<int>(state.range(0));
  spec.height = static_cast<int>(state.range(1));
  spec.dim_jitter = 0;
  dlb::Image img = dlb::RenderScene(spec, 0, nullptr);
  const dlb::Bytes data = dlb::png::Encode(img).value();
  for (auto _ : state) {
    auto decoded = dlb::png::Decode(data);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_PngDecode)->Args({500, 375})->Args({224, 224});

void BM_JpegEncode(benchmark::State& state) {
  dlb::DatasetSpec spec = dlb::ImageNetLikeSpec(1, 9);
  spec.width = 500;
  spec.height = 375;
  spec.dim_jitter = 0;
  dlb::Image img = dlb::RenderScene(spec, 0, nullptr);
  for (auto _ : state) {
    auto encoded = dlb::jpeg::Encode(img);
    benchmark::DoNotOptimize(encoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JpegEncode);

}  // namespace
