// Monitoring overhead: the continuous monitoring plane (metrics sampler +
// HTTP exposition server + a live scraper) must not tax the pipeline.
//
// End-to-end dlbooster throughput is measured with monitoring off vs fully
// on — sampler at a 100 ms period (5x the default rate) and a client thread
// scraping /metrics at 4 Hz, ~60x harsher than a Prometheus 15 s scrape
// interval. Acceptance: on/off >= 0.95, which must hold even on a
// single-core host where the monitoring threads compete with the pipeline.
//
// `--json` emits the measurements as one JSON document.
#include <algorithm>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::workflow;

namespace {

// One short /metrics GET against the loopback exposition server.
bool ScrapeOnce(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  const char req[] =
      "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  (void)!::send(fd, req, sizeof(req) - 1, MSG_NOSIGNAL);
  char buf[8192];
  size_t total = 0;
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) total += n;
  ::close(fd);
  return total > 0;
}

struct RunResult {
  double images_per_second = 0.0;
  uint64_t scrapes = 0;
};

RunResult RunPipeline(const Dataset& ds, size_t num_images, bool monitored) {
  core::PipelineConfig config;
  config.backend = "dlbooster";
  config.options.batch_size = 16;
  config.options.resize_w = 224;
  config.options.resize_h = 224;
  config.max_images = num_images;
  if (monitored) {
    config.monitor_port = 0;  // ephemeral
    config.monitor_sample_ms = 100;
    config.event_log_level = "info";
  }
  auto pipeline = core::PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.manifest, ds.store.get())
                      .Build();
  RunResult r;
  if (!pipeline.ok()) {
    std::printf("  pipeline build failed: %s\n",
                pipeline.status().ToString().c_str());
    return r;
  }

  // A 4 Hz scraper: one /metrics GET every 250 ms for the whole run.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> scrapes{0};
  std::jthread scraper;
  if (monitored) {
    const int port = pipeline.value()->MonitorPort();
    scraper = std::jthread([&, port] {
      while (!done.load(std::memory_order_relaxed)) {
        if (ScrapeOnce(port)) scrapes.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
    });
  }

  while (pipeline.value()->NextBatch().ok()) {
  }
  r.images_per_second = pipeline.value()->Stats().images_per_second;
  done.store(true, std::memory_order_relaxed);
  if (scraper.joinable()) scraper.join();
  r.scrapes = scrapes.load(std::memory_order_relaxed);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  if (!json) std::printf("=== Monitoring overhead ===\n\n");

  constexpr size_t kImages = 256;
  constexpr int kReps = 5;
  auto ds = GenerateDataset(ImageNetLikeSpec(kImages));
  if (!ds.ok()) {
    std::printf("dataset generation failed: %s\n",
                ds.status().ToString().c_str());
    return 1;
  }

  // Alternate off/on runs (best of kReps each) so drift hits both equally.
  double best_off = 0.0, best_on = 0.0;
  uint64_t scrapes = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    best_off = std::max(
        best_off, RunPipeline(ds.value(), kImages, false).images_per_second);
    const RunResult on = RunPipeline(ds.value(), kImages, true);
    best_on = std::max(best_on, on.images_per_second);
    scrapes = std::max(scrapes, on.scrapes);
  }
  const double ratio = best_off > 0.0 ? best_on / best_off : 0.0;

  if (json) {
    std::printf("{\n  \"images\": %zu,\n  \"off_img_s\": %s,\n"
                "  \"on_img_s\": %s,\n  \"scrapes\": %llu,\n"
                "  \"on_off_ratio\": %s,\n  \"pass\": %s\n}\n",
                kImages, Fmt(best_off, 1).c_str(), Fmt(best_on, 1).c_str(),
                static_cast<unsigned long long>(scrapes),
                Fmt(ratio, 3).c_str(), ratio >= 0.95 ? "true" : "false");
    return ratio >= 0.95 ? 0 : 1;
  }

  std::printf("end-to-end, dlbooster pipeline, %zu images, best of %d:\n",
              kImages, kReps);
  Table t({"monitoring", "images / s", "scrapes served"});
  t.AddRow({"off", Fmt(best_off, 0), "0"});
  t.AddRow({"sampler@100ms + 4Hz scraper", Fmt(best_on, 0),
            std::to_string(scrapes)});
  std::printf("%s", t.Render().c_str());
  std::printf("-> monitoring-on keeps %.1f%% of monitoring-off throughput ",
              100.0 * ratio);
  if (ratio >= 0.95) {
    std::printf("(PASS: >= 95%%)\n");
    return 0;
  }
  std::printf("(FAIL: < 95%%)\n");
  return 1;
}
