// Ablation (§5.2 reason 1): batched large-block H2D copies vs per-item
// small copies. The paper credits DLBooster's batch-granular memory with
// ~20% of LeNet-5 training throughput relative to backends that copy each
// datum separately.
#include <cstdio>

#include "workflow/report.h"
#include "workflow/training_sim.h"

using namespace dlb;
using namespace dlb::workflow;

int main() {
  std::printf("=== Ablation: H2D copy granularity (LeNet-5, bs 512) ===\n\n");
  Table t({"copy scheme", "img/s", "vs block copy"});
  double block_tp = 0;
  for (bool per_item : {false, true}) {
    TrainConfig config;
    config.model = &gpu::LeNet5();
    config.backend = TrainBackend::kDlbooster;
    config.dataset_fits_memory = true;  // isolate the copy effect
    config.force_per_item_copies = per_item;
    config.sim_seconds = 10;
    const double tp = SimulateTraining(config).throughput;
    if (!per_item) block_tp = tp;
    t.AddRow({per_item ? "per-item (512 copies/batch)" : "one block per batch",
              FmtCount(tp),
              per_item ? Fmt(100.0 * (1.0 - tp / block_tp), 0) + "% slower"
                       : "baseline"});
  }
  std::printf("%s\n", t.Render().c_str());

  std::printf("same ablation on AlexNet (copies amortised by compute):\n");
  Table t2({"copy scheme", "img/s"});
  for (bool per_item : {false, true}) {
    TrainConfig config;
    config.model = &gpu::AlexNet();
    config.backend = TrainBackend::kDlbooster;
    config.force_per_item_copies = per_item;
    config.sim_seconds = 10;
    t2.AddRow({per_item ? "per-item" : "block",
               FmtCount(SimulateTraining(config).throughput)});
  }
  std::printf("%s\n", t2.Render().c_str());
  std::printf(
      "paper shape: ~20%% loss on LeNet-5 from small-piece copies; heavy\n"
      "models hide the overhead behind compute.\n");
  return 0;
}
