// Figure 2 — motivation study: training AlexNet with NVCaffe-style engines
// under data parallelism (batch 256/GPU).
//   (a) throughput under the DEFAULT configuration per backend
//   (b) CPU cores needed to reach each backend's MAXIMUM throughput
//       (paper caption: CPU-based 2346/4363, LMDB 2446/3200, Ideal 2496/4652)
#include <cstdio>

#include "workflow/report.h"
#include "workflow/training_sim.h"

using namespace dlb;
using namespace dlb::workflow;

int main() {
  std::printf(
      "=== Figure 2: AlexNet training on P100s, data parallelism ===\n\n");

  std::printf("(a) throughput under the default configuration\n");
  Table a({"backend", "1 GPU (img/s)", "2 GPU (img/s)", "% of boundary"});
  for (auto backend :
       {TrainBackend::kCpu, TrainBackend::kLmdb, TrainBackend::kSynthetic}) {
    double tp[2];
    for (int gpus = 1; gpus <= 2; ++gpus) {
      TrainConfig config;
      config.model = &gpu::AlexNet();
      config.backend = backend;
      config.num_gpus = gpus;
      if (backend == TrainBackend::kCpu) {
        config.cpu_decode_threads_per_gpu = cal::kCpuDefaultDecodeThreads;
      }
      tp[gpus - 1] = SimulateTraining(config).throughput;
    }
    const char* name = backend == TrainBackend::kSynthetic
                           ? "ideal (synthetic)"
                           : TrainBackendName(backend);
    a.AddRow({name, FmtCount(tp[0]), FmtCount(tp[1]),
              Fmt(100.0 * tp[1] / 4652.0, 0)});
  }
  std::printf("%s\n", a.Render().c_str());

  std::printf("(b) CPU cost at MAXIMUM throughput (best-effort cores)\n");
  Table b({"backend", "1 GPU img/s", "1 GPU cores", "2 GPU img/s",
           "2 GPU cores"});
  for (auto backend :
       {TrainBackend::kCpu, TrainBackend::kLmdb, TrainBackend::kSynthetic}) {
    std::vector<std::string> row;
    const char* name = backend == TrainBackend::kSynthetic
                           ? "ideal (synthetic)"
                           : TrainBackendName(backend);
    row.push_back(name);
    for (int gpus = 1; gpus <= 2; ++gpus) {
      TrainConfig config;
      config.model = &gpu::AlexNet();
      config.backend = backend;
      config.num_gpus = gpus;
      TrainResult r = SimulateTraining(config);
      row.push_back(FmtCount(r.throughput));
      row.push_back(Fmt(r.cpu_cores, 1));
    }
    b.AddRow(row);
  }
  std::printf("%s\n", b.Render().c_str());
  std::printf(
      "paper anchors: CPU-based 2346/4363 img/s (~12 cores/GPU), LMDB\n"
      "2446/3200 img/s, ideal boundary 2496/4652 img/s.\n");
  return 0;
}
