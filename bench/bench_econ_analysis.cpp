// Section 5.4 — economic analysis: what replacing burned cores with one
// FPGA decoder is worth to users and to the cloud provider.
#include <cstdio>

#include "workflow/econ.h"
#include "workflow/report.h"

using namespace dlb::workflow;

int main() {
  std::printf("=== Section 5.4: economic analysis ===\n\n");
  EconInput input;  // paper defaults: 30 cores, $0.105/core-hour, 25 W FPGA
  EconReport report = AnalyzeEconomics(input);
  std::printf("%s\n", RenderEconReport(input, report).c_str());

  std::printf("sensitivity: cores replaced by one decoder\n");
  Table t({"cores", "freed $/h", "freed $/yr", "payback (days)"});
  for (double cores : {10.0, 20.0, 30.0, 40.0}) {
    EconInput in = input;
    in.cores_replaced = cores;
    EconReport r = AnalyzeEconomics(in);
    t.AddRow({Fmt(cores, 0), Fmt(r.freed_core_dollars_per_hour, 2),
              FmtCount(r.core_revenue_per_year), Fmt(r.fpga_payback_days, 0)});
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf(
      "paper anchors: ~$900/core-year, 30-core-equivalent decoder =>\n"
      ">$1.5/h of resellable cores; FPGA 25 W vs CPU 130 W vs GPU 250 W.\n");
  return 0;
}
