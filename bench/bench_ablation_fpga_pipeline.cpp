// Ablation (§3.3 step 1): decoupled pipelined units vs one fused
// monolithic block. Pipelining lets image i+1's Huffman decode overlap
// image i's iDCT/resize; fusing serialises everything.
#include <cstdio>

#include "fpga/fpga_decoder_sim.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::fpga;
using namespace dlb::workflow;

namespace {

struct Point {
  double throughput;
  double latency_ms;
};

Point Measure(bool pipelined) {
  sim::Scheduler sched;
  DecoderConfig config;
  config.pipelined = pipelined;
  FpgaDecoderSim decoder(&sched, config);
  DecodeJob job;
  job.encoded_bytes = 60 * 1024;
  job.pixels = 500 * 375;
  job.out_bytes = 256 * 256 * 3;
  int completed = 0;
  for (int i = 0; i < 600; ++i) {
    while (!decoder.SubmitDecode(job, [&] { ++completed; })) sched.Step();
  }
  sched.Run();
  return {600 / sim::ToSeconds(sched.Now()),
          decoder.LatencyHistogram().Mean() / 1e6};
}

}  // namespace

int main() {
  std::printf("=== Ablation: pipelined vs fused decoder units ===\n\n");
  Table t({"design", "img/s", "mean latency (ms)"});
  const Point pipelined = Measure(true);
  const Point fused = Measure(false);
  t.AddRow({"three pipelined units (paper)", FmtCount(pipelined.throughput),
            Fmt(pipelined.latency_ms, 2)});
  t.AddRow({"fused monolithic block", FmtCount(fused.throughput),
            Fmt(fused.latency_ms, 2)});
  std::printf("%s\n", t.Render().c_str());
  std::printf("pipelining speedup: %.1fx\n",
              pipelined.throughput / fused.throughput);
  return 0;
}
