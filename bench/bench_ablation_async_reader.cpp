// Ablation (§3.4.1): asynchronous FPGAReader (deep cmd FIFO, aggressive
// submit + best-effort drain) vs a synchronous submit-and-wait host loop
// (FIFO depth 1). Async submission is what keeps every pipeline stage fed.
#include <cstdio>

#include "fpga/fpga_decoder_sim.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::fpga;
using namespace dlb::workflow;

namespace {

double Measure(int fifo_depth) {
  sim::Scheduler sched;
  DecoderConfig config;
  config.cmd_fifo_depth = fifo_depth;
  FpgaDecoderSim decoder(&sched, config);
  DecodeJob job;
  job.encoded_bytes = 60 * 1024;
  job.pixels = 500 * 375;
  job.out_bytes = 256 * 256 * 3;
  int completed = 0;
  for (int i = 0; i < 600; ++i) {
    while (!decoder.SubmitDecode(job, [&] { ++completed; })) sched.Step();
  }
  sched.Run();
  return 600 / sim::ToSeconds(sched.Now());
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: async FPGAReader vs synchronous submit-wait ===\n\n");
  Table t({"cmd FIFO depth", "img/s", "vs sync"});
  const double sync_rate = Measure(1);
  for (int depth : {1, 2, 4, 8, 16, 64}) {
    const double rate = Measure(depth);
    t.AddRow({std::to_string(depth), FmtCount(rate),
              Fmt(rate / sync_rate, 2) + "x"});
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf(
      "depth 1 is a synchronous host loop: one image traverses the whole\n"
      "pipeline before the next is admitted. Algorithm 1's asynchronous\n"
      "submit keeps all units busy once the FIFO covers the pipeline\n"
      "depth.\n");
  return 0;
}
