// Trace overhead: observability must be invisible when off and near-free
// when on. Two measurements back the claim:
//
//   1. Micro: Telemetry::RecordSpan cost with tracing disabled vs enabled
//      (the per-span delta every stage pays on the hot path).
//   2. End-to-end: dlbooster pipeline throughput with observability off vs
//      fully on (tracing + debug event log). Acceptance: on/off >= 0.95.
//
// `--json` emits the measurements as one JSON document.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "telemetry/telemetry.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::workflow;

namespace {

// ns per RecordSpan call, averaged over `iters` calls against a fresh sink.
double MicroRecordSpanNs(bool traced, size_t iters) {
  telemetry::Telemetry sink;
  telemetry::TraceContext ctx;
  if (traced) {
    sink.EnableTracing(size_t{1} << 15);
    ctx = sink.tracer()->StartBatch();
  }
  const uint64_t begin = telemetry::NowNs();
  for (size_t i = 0; i < iters; ++i) {
    const uint64_t t = telemetry::NowNs();
    sink.RecordSpan(telemetry::Stage::kDecode, t, t + 1000, 1, ctx,
                    telemetry::Subsystem::kBackend);
  }
  const uint64_t end = telemetry::NowNs();
  if (traced) sink.tracer()->AbandonBatch(ctx);
  return static_cast<double>(end - begin) / static_cast<double>(iters);
}

struct RunResult {
  double images_per_second = 0.0;
  uint64_t spans = 0;
};

// One full pipeline pass over the dataset; returns end-to-end throughput.
RunResult RunPipeline(const Dataset& ds, size_t num_images,
                      bool observability) {
  core::PipelineConfig config;
  config.backend = "dlbooster";
  config.options.batch_size = 16;
  config.options.resize_w = 224;
  config.options.resize_h = 224;
  config.max_images = num_images;
  if (observability) {
    config.enable_tracing = true;
    config.event_log_level = "debug";
  }
  auto pipeline = core::PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.manifest, ds.store.get())
                      .Build();
  RunResult r;
  if (!pipeline.ok()) {
    std::printf("  pipeline build failed: %s\n",
                pipeline.status().ToString().c_str());
    return r;
  }
  while (pipeline.value()->NextBatch().ok()) {
  }
  r.images_per_second = pipeline.value()->Stats().images_per_second;
  if (telemetry::Tracer* tracer = pipeline.value()->Tracer()) {
    r.spans = tracer->SpansRecorded();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  if (!json) std::printf("=== Trace overhead ===\n\n");

  constexpr size_t kMicroIters = 200000;
  const double off_ns = MicroRecordSpanNs(false, kMicroIters);
  const double on_ns = MicroRecordSpanNs(true, kMicroIters);
  if (!json) {
    std::printf("micro, RecordSpan x%zu:\n", kMicroIters);
    Table t({"tracing", "ns / span", "delta ns"});
    t.AddRow({"off", Fmt(off_ns, 1), "-"});
    t.AddRow({"on", Fmt(on_ns, 1), Fmt(on_ns - off_ns, 1)});
    std::printf("%s", t.Render().c_str());
    std::printf("-> the per-span delta is the whole hot-path cost of the\n"
                "   seqlock ring write + trace-id bookkeeping.\n\n");
  }

  constexpr size_t kImages = 256;
  constexpr int kReps = 5;
  auto ds = GenerateDataset(ImageNetLikeSpec(kImages));
  if (!ds.ok()) {
    std::printf("dataset generation failed: %s\n",
                ds.status().ToString().c_str());
    return 1;
  }

  // Alternate off/on runs (best of kReps each) so drift hits both equally.
  double best_off = 0.0, best_on = 0.0;
  uint64_t spans = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    best_off = std::max(best_off,
                        RunPipeline(ds.value(), kImages, false).images_per_second);
    const RunResult on = RunPipeline(ds.value(), kImages, true);
    best_on = std::max(best_on, on.images_per_second);
    spans = on.spans;
  }

  const double ratio = best_off > 0.0 ? best_on / best_off : 0.0;

  if (json) {
    std::printf("{\n  \"images\": %zu,\n  \"micro_off_ns\": %s,\n"
                "  \"micro_on_ns\": %s,\n  \"off_img_s\": %s,\n"
                "  \"on_img_s\": %s,\n  \"spans\": %llu,\n"
                "  \"on_off_ratio\": %s,\n  \"pass\": %s\n}\n",
                kImages, Fmt(off_ns, 1).c_str(), Fmt(on_ns, 1).c_str(),
                Fmt(best_off, 1).c_str(), Fmt(best_on, 1).c_str(),
                static_cast<unsigned long long>(spans),
                Fmt(ratio, 3).c_str(), ratio >= 0.95 ? "true" : "false");
    return ratio >= 0.95 ? 0 : 1;
  }

  std::printf("end-to-end, dlbooster pipeline, %zu images, best of %d:\n",
              kImages, kReps);
  Table t({"observability", "images / s", "spans"});
  t.AddRow({"off", Fmt(best_off, 0), "0"});
  t.AddRow({"tracing + events", Fmt(best_on, 0), std::to_string(spans)});
  std::printf("%s", t.Render().c_str());
  std::printf("-> tracing-on keeps %.1f%% of tracing-off throughput ",
              100.0 * ratio);
  if (ratio >= 0.95) {
    std::printf("(PASS: >= 95%%)\n");
    return 0;
  }
  std::printf("(FAIL: < 95%%)\n");
  return 1;
}
