// Ablation (§3.1 hybrid service): first-epoch memory cache on/off, measured
// on the REAL runtime pipeline (actual decode threads, actual bytes).
// With the cache, epoch 2+ serve from memory at memcpy speed; without it,
// every epoch pays full decode cost.
#include <chrono>
#include <cstdio>

#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::workflow;

namespace {

double EpochSeconds(core::Pipeline& pipeline, size_t batches) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t b = 0; b < batches; ++b) {
    auto batch = pipeline.NextBatch();
    if (!batch.ok()) break;
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  std::printf("=== Ablation: first-epoch memory cache (runtime) ===\n\n");
  constexpr size_t kImages = 192;
  constexpr size_t kBatch = 16;
  constexpr size_t kBatches = kImages / kBatch;
  constexpr int kEpochs = 3;

  DatasetSpec spec = ImageNetLikeSpec(kImages);
  spec.width = 160;
  spec.height = 120;
  auto dataset = GenerateDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  Table t({"config", "epoch 1 (s)", "epoch 2 (s)", "epoch 3 (s)",
           "epoch-2 speedup"});
  for (bool cache : {false, true}) {
    core::PipelineConfig config;
    config.backend = "cpu";
    config.options.batch_size = kBatch;
    config.options.resize_w = 64;
    config.options.resize_h = 64;
    config.options.shuffle = false;
    config.options.num_threads = 2;
    config.max_images = kImages * kEpochs;
    config.cache_epochs = cache;
    auto pipeline = core::PipelineBuilder()
                        .WithConfig(config)
                        .WithDataset(&dataset.value().manifest,
                                     dataset.value().store.get())
                        .Build();
    if (!pipeline.ok()) {
      std::fprintf(stderr, "pipeline: %s\n",
                   pipeline.status().ToString().c_str());
      return 1;
    }
    double seconds[kEpochs];
    for (int e = 0; e < kEpochs; ++e) {
      seconds[e] = EpochSeconds(*pipeline.value(), kBatches);
    }
    t.AddRow({cache ? "cache on (DLBooster hybrid)" : "cache off",
              Fmt(seconds[0], 3), Fmt(seconds[1], 3), Fmt(seconds[2], 3),
              Fmt(seconds[0] / std::max(seconds[1], 1e-9), 1) + "x"});
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf(
      "with the cache, epochs after the first replay decoded batches from\n"
      "memory — the reason every backend trains MNIST at full speed in\n"
      "Fig. 5(a) while ILSVRC (too big to cache) separates them.\n");
  return 0;
}
