// Profiler overhead: the always-on sampling profiler (dlb::prof) must not
// tax the pipeline it observes.
//
// End-to-end dlbooster throughput is measured with no profiler vs a
// Profiler sampling at 1 kHz (the /profile default) for the whole run —
// every worker thread tagged, every tick reading each thread's seqlock tag
// stack and per-thread CPU clock. Acceptance: on/off >= 0.95 (ISSUE 7),
// which bounds both the sampler thread's cost and the per-span tag pushes.
//
// `--json` emits the measurements as one JSON document.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/pipeline.h"
#include "dataplane/synthetic_dataset.h"
#include "telemetry/profiler.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::workflow;

namespace {

struct RunResult {
  double images_per_second = 0.0;
  uint64_t samples = 0;
};

RunResult RunPipeline(const Dataset& ds, size_t num_images, bool profiled) {
  core::PipelineConfig config;
  config.backend = "dlbooster";
  config.options.batch_size = 16;
  config.options.resize_w = 224;
  config.options.resize_h = 224;
  config.max_images = num_images;
  auto pipeline = core::PipelineBuilder()
                      .WithConfig(config)
                      .WithDataset(&ds.manifest, ds.store.get())
                      .Build();
  RunResult r;
  if (!pipeline.ok()) {
    std::printf("  pipeline build failed: %s\n",
                pipeline.status().ToString().c_str());
    return r;
  }

  prof::Profiler profiler;  // 1 kHz default
  if (profiled) profiler.Start();
  while (pipeline.value()->NextBatch().ok()) {
  }
  r.images_per_second = pipeline.value()->Stats().images_per_second;
  if (profiled) {
    profiler.Stop();
    r.samples = profiler.Report().samples;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  if (!json) std::printf("=== Profiler overhead ===\n\n");

  constexpr size_t kImages = 256;
  constexpr int kReps = 5;
  auto ds = GenerateDataset(ImageNetLikeSpec(kImages));
  if (!ds.ok()) {
    std::printf("dataset generation failed: %s\n",
                ds.status().ToString().c_str());
    return 1;
  }

  // Alternate off/on runs (best of kReps each) so drift hits both equally.
  double best_off = 0.0, best_on = 0.0;
  uint64_t samples = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    best_off = std::max(
        best_off, RunPipeline(ds.value(), kImages, false).images_per_second);
    const RunResult on = RunPipeline(ds.value(), kImages, true);
    best_on = std::max(best_on, on.images_per_second);
    samples = std::max(samples, on.samples);
  }
  const double ratio = best_off > 0.0 ? best_on / best_off : 0.0;

  if (json) {
    std::printf("{\n  \"images\": %zu,\n  \"off_img_s\": %s,\n"
                "  \"on_img_s\": %s,\n  \"profile_samples\": %llu,\n"
                "  \"on_off_ratio\": %s,\n  \"pass\": %s\n}\n",
                kImages, Fmt(best_off, 1).c_str(), Fmt(best_on, 1).c_str(),
                static_cast<unsigned long long>(samples),
                Fmt(ratio, 3).c_str(), ratio >= 0.95 ? "true" : "false");
    return ratio >= 0.95 ? 0 : 1;
  }

  std::printf("end-to-end, dlbooster pipeline, %zu images, best of %d:\n",
              kImages, kReps);
  Table t({"profiler", "images / s", "thread-samples"});
  t.AddRow({"off", Fmt(best_off, 0), "0"});
  t.AddRow({"sampling @ 1 kHz", Fmt(best_on, 0), std::to_string(samples)});
  std::printf("%s", t.Render().c_str());
  std::printf("-> profiling-on keeps %.1f%% of profiling-off throughput ",
              100.0 * ratio);
  if (ratio >= 0.95) {
    std::printf("(PASS: >= 95%%)\n");
    return 0;
  }
  std::printf("(FAIL: < 95%%)\n");
  return 1;
}
