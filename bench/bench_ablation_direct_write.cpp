// Extension (§7 future work, item 2): "directly writing the processed data
// to GPU devices for lower latency". The decoder's output DMA targets GPU
// memory (GPUDirect-style peer writes) instead of the host pool, skipping
// the staging copy. This bench quantifies what the paper anticipated.
#include <cstdio>

#include "workflow/inference_sim.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::workflow;

int main() {
  std::printf(
      "=== Extension: decoder DMA direct to GPU memory (GoogLeNet) ===\n\n");
  Table t({"batch", "host-staged lat (ms)", "direct lat (ms)", "saved",
           "host tput", "direct tput"});
  for (int batch : {1, 2, 4, 8, 16, 32}) {
    InferConfig staged;
    staged.model = &gpu::GoogLeNet();
    staged.backend = InferBackend::kDlbooster;
    staged.batch_size = batch;
    staged.sim_seconds = 8.0;
    InferConfig direct = staged;
    direct.direct_gpu_write = true;
    const InferResult a = SimulateInference(staged);
    const InferResult b = SimulateInference(direct);
    t.AddRow({std::to_string(batch), Fmt(a.latency_ms_mean, 2),
              Fmt(b.latency_ms_mean, 2),
              Fmt(a.latency_ms_mean - b.latency_ms_mean, 2) + "ms",
              FmtCount(a.throughput), FmtCount(b.throughput)});
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf(
      "direct writes shave the per-batch staging copy off the critical\n"
      "path; the win is largest at small batches where the copy overhead\n"
      "is not amortised (the latency-sensitive serving regime).\n");
  return 0;
}
