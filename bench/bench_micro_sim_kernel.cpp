// Micro-benchmark of the DES kernel itself: event throughput bounds how
// big a figure sweep can be. Millions of events per second keeps every
// bench under a second per data point.
#include <benchmark/benchmark.h>

#include "sim/processor_sharing.h"
#include "sim/resource.h"
#include "sim/scheduler.h"

namespace {

void BM_SchedulerEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    dlb::sim::Scheduler sched;
    constexpr int kEvents = 100000;
    int fired = 0;
    for (int i = 0; i < kEvents; ++i) {
      sched.At(static_cast<dlb::sim::SimTime>((i * 37) % 5000),
               [&fired] { ++fired; });
    }
    sched.Run();
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.items_processed() + kEvents);
  }
}
BENCHMARK(BM_SchedulerEventChurn)->Unit(benchmark::kMillisecond);

void BM_ResourcePipeline(benchmark::State& state) {
  for (auto _ : state) {
    dlb::sim::Scheduler sched;
    dlb::sim::Resource a(&sched, 4, "a"), b(&sched, 1, "b");
    constexpr int kJobs = 20000;
    int done = 0;
    for (int i = 0; i < kJobs; ++i) {
      a.Submit(100, [&] { b.Submit(25, [&done] { ++done; }); });
    }
    sched.Run();
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(state.items_processed() + kJobs);
  }
}
BENCHMARK(BM_ResourcePipeline)->Unit(benchmark::kMillisecond);

void BM_ProcessorSharingChurn(benchmark::State& state) {
  for (auto _ : state) {
    dlb::sim::Scheduler sched;
    dlb::sim::ProcessorSharing ps(&sched, 1000.0, "gpu");
    constexpr int kJobs = 5000;
    int done = 0;
    for (int i = 0; i < kJobs; ++i) {
      sched.At(static_cast<dlb::sim::SimTime>(i) * 1000, [&ps, &done] {
        ps.Submit(0.5, 1.0, [&done] { ++done; });
      });
    }
    sched.Run();
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(state.items_processed() + kJobs);
  }
}
BENCHMARK(BM_ProcessorSharingChurn)->Unit(benchmark::kMillisecond);

}  // namespace
