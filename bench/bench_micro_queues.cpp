// Micro-benchmarks of the channel primitives the host bridger runs on.
#include <benchmark/benchmark.h>

#include <thread>

#include "common/bounded_queue.h"
#include "common/spsc_ring.h"

namespace {

void BM_BoundedQueuePushPop(benchmark::State& state) {
  dlb::BoundedQueue<int> queue(1024);
  int v = 0;
  for (auto _ : state) {
    (void)queue.TryPush(v++);
    benchmark::DoNotOptimize(queue.TryPop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundedQueuePushPop);

void BM_SpscRingPushPop(benchmark::State& state) {
  dlb::SpscRing<int> ring(1024);
  int v = 0;
  for (auto _ : state) {
    ring.TryPush(v++);
    benchmark::DoNotOptimize(ring.TryPop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPushPop);

void BM_BoundedQueueProducerConsumer(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    dlb::BoundedQueue<int> queue(256);
    constexpr int kItems = 20000;
    state.ResumeTiming();
    std::thread producer([&queue] {
      for (int i = 0; i < kItems; ++i) (void)queue.Push(i);
      queue.Close();
    });
    long sum = 0;
    while (auto v = queue.Pop()) sum += *v;
    producer.join();
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.items_processed() + kItems);
  }
}
BENCHMARK(BM_BoundedQueueProducerConsumer)->Unit(benchmark::kMillisecond);

void BM_SpscRingStream(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    dlb::SpscRing<int> ring(1024);
    constexpr int kItems = 20000;
    state.ResumeTiming();
    std::thread producer([&ring] {
      for (int i = 0; i < kItems;) {
        if (ring.TryPush(i)) ++i;
      }
    });
    int received = 0;
    long sum = 0;
    while (received < kItems) {
      if (auto v = ring.TryPop()) {
        sum += *v;
        ++received;
      }
    }
    producer.join();
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.items_processed() + kItems);
  }
}
BENCHMARK(BM_SpscRingStream)->Unit(benchmark::kMillisecond);

}  // namespace
