// Figure 8 — online inference latency (ms), measured from "image received"
// to "prediction made", per model/backend/batch size. The paper's batch-1
// anchors are 1.2 / 1.8 / 3.4 ms for DLBooster / nvJPEG / CPU-based.
#include <cstdio>
#include <vector>

#include "workflow/inference_sim.h"
#include "workflow/report.h"

using namespace dlb;
using namespace dlb::workflow;

namespace {

void RunPanel(const char* title, const gpu::DlModel* model, int max_batch,
              int num_gpus, int pipelines) {
  std::printf("(%s)\n", title);
  std::vector<int> batches;
  for (int b = 1; b <= max_batch; b *= 2) batches.push_back(b);
  std::vector<std::string> headers = {"backend"};
  for (int b : batches) headers.push_back("bs" + std::to_string(b));
  Table t(headers);
  for (auto backend :
       {InferBackend::kCpu, InferBackend::kNvjpeg, InferBackend::kDlbooster}) {
    std::vector<std::string> row{InferBackendName(backend)};
    for (int b : batches) {
      InferConfig config;
      config.model = model;
      config.backend = backend;
      config.batch_size = b;
      config.num_gpus = num_gpus;
      config.fpga_pipelines = pipelines;
      config.sim_seconds = 8.0;
      row.push_back(Fmt(SimulateInference(config).latency_ms_mean, 1));
    }
    t.AddRow(row);
  }
  std::printf("%s\n", t.Render().c_str());
}

}  // namespace

int main() {
  std::printf("=== Figure 8: inference latency (ms) vs batch size ===\n\n");
  RunPanel("a: GoogLeNet", &gpu::GoogLeNet(), 32, 1, 1);
  RunPanel("b: VGG-16", &gpu::Vgg16(), 32, 1, 1);
  RunPanel("c: ResNet-50 [2 GPUs, 2 pipelines]", &gpu::ResNet50(), 64, 2, 2);
  std::printf(
      "paper shape: DLBooster lowest at every batch size; nvJPEG's latency\n"
      "inflates with batch size as decode and inference fight for CUDA\n"
      "cores; all backends grow with batch size from batching delay.\n");
  return 0;
}
