// Ablation (§5.2 reason 2): one singleton decoding service feeding all
// GPUs round-robin vs per-GPU decoder instances contending on shared state
// (the LMDB failure mode: several instances compete for the shared DB and
// lose ~30% at 2 GPUs).
#include <cstdio>

#include "workflow/report.h"
#include "workflow/training_sim.h"

using namespace dlb;
using namespace dlb::workflow;

int main() {
  std::printf(
      "=== Ablation: singleton decoding service vs per-GPU instances ===\n"
      "AlexNet, 2 GPUs, bs 256\n\n");
  Table t({"backend", "arrangement", "img/s"});
  for (bool singleton : {false, true}) {
    TrainConfig config;
    config.model = &gpu::AlexNet();
    config.backend = TrainBackend::kLmdb;
    config.num_gpus = 2;
    config.lmdb_singleton_service = singleton;
    config.sim_seconds = 10;
    t.AddRow({"lmdb",
              singleton ? "singleton service (ablation)"
                        : "per-GPU readers (Caffe default)",
              FmtCount(SimulateTraining(config).throughput)});
  }
  for (bool per_gpu : {false, true}) {
    TrainConfig config;
    config.model = &gpu::AlexNet();
    config.backend = TrainBackend::kDlbooster;
    config.num_gpus = 2;
    config.per_gpu_decoder_instances = per_gpu;
    config.sim_seconds = 10;
    t.AddRow({"dlbooster",
              per_gpu ? "fragmented per-GPU decoders (ablation)"
                      : "singleton + round-robin (paper)",
              FmtCount(SimulateTraining(config).throughput)});
  }
  std::printf("%s\n", t.Render().c_str());
  std::printf(
      "paper shape: multiple LMDB instances interact on the shared DB and\n"
      "lose throughput; DLBooster's singleton decoder with round-robin\n"
      "dispatch avoids the imbalance (§5.2).\n");
  return 0;
}
